"""Multi-core experiment drivers (Fig. 15, Section VII-B)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.metrics import amean, geomean
from ..analysis.report import format_table
from ..exec.pool import JobFailure
from ..prefetchers.base import MODE_ON_ACCESS, MODE_ON_COMMIT
from ..sim.multicore import run_mix
from ..workloads.mixes import mix_name
from .figures import FigureResult
from .runner import BASELINE, ExperimentRunner

#: Fig. 15's series, in the paper's legend order.
FIG15_CONFIGS = (
    ("no-pref/S", dict(secure=True), None),
    ("berti-OA/NS", dict(secure=False, train_mode=MODE_ON_ACCESS), "berti"),
    ("berti-OC/S", dict(secure=True, train_mode=MODE_ON_COMMIT), "berti"),
    ("berti-OC/S+SUF", dict(secure=True, suf=True,
                            train_mode=MODE_ON_COMMIT), "berti"),
    ("tsb", dict(secure=True, train_mode=MODE_ON_COMMIT), "tsb"),
    ("tsb+suf", dict(secure=True, suf=True,
                     train_mode=MODE_ON_COMMIT), "tsb"),
)


def fig15(runner: ExperimentRunner, cores: int = 4,
          n_mixes: Optional[int] = None) -> FigureResult:
    """Fig. 15: weighted speedup over 4-core mixes, normalized to the
    non-secure, no-prefetch system.

    The paper runs 150 random mixes; the runner's scale picks a smaller
    seeded count.  Mixes are reported sorted by speedup, as in the figure.
    """
    mixes = runner.mixes(cores=cores)
    if n_mixes is not None:
        mixes = mixes[:n_mixes]
    warmup = runner.scale.warmup

    # Alone-IPC runs are plain single-core baseline simulations, so they
    # route through the runner's execution layer: store-backed, and run
    # in parallel across workers when the runner has jobs > 1.
    distinct = list({t.name: t for mix in mixes for t in mix}.values())
    runner.run_pool(BASELINE, distinct)

    def alone(mix: Sequence) -> List[float]:
        return [runner.run(BASELINE, t).ipc for t in mix]

    def shared_ws(mix, label: str, prefetcher: Optional[str],
                  **kwargs) -> Optional[float]:
        """One mix's weighted speedup; a failed mix becomes a recorded
        failure (rendered in the failure summary) instead of aborting the
        figure when the runner is failsoft."""
        factory = (lambda name=prefetcher: runner.build_prefetcher(name)
                   ) if prefetcher else None
        try:
            shared = run_mix(mix, cores=cores, params=runner.params,
                             warmup=warmup, prefetcher_factory=factory,
                             **kwargs)
        except Exception as exc:
            failure = JobFailure(label, mix_name(mix),
                                 f"{type(exc).__name__}: {exc}")
            runner.failures.append(failure)
            if not runner.failsoft:
                raise
            return None
        return shared.weighted_speedup(alone(mix))

    # Normalization baseline: non-secure, no prefetching, same mix.
    base_ws = [shared_ws(mix, "base/NS", None) for mix in mixes]

    rows: Dict[str, List[float]] = {}
    per_config_norms: Dict[str, List[float]] = {}
    for label, kwargs, prefetcher in FIG15_CONFIGS:
        norms = []
        for mix, base in zip(mixes, base_ws):
            if base is None:
                continue
            ws = shared_ws(mix, label, prefetcher, **kwargs)
            if ws is None:
                norms.append(float("nan"))
                continue
            norms.append(ws / base if base else 0.0)
        clean = [n for n in norms if n == n]
        per_config_norms[label] = sorted(clean)
        rows[label] = [geomean(norms),
                       min(clean) if clean else float("nan"),
                       max(clean) if clean else float("nan")]

    text = format_table(
        f"Fig. 15: {cores}-core weighted speedup vs non-secure no-prefetch "
        f"({len(mixes)} mixes; geomean/min/max)",
        ["geomean", "min", "max"], rows)
    result = FigureResult("fig15", "multi-core mixes",
                          ["geomean", "min", "max"], rows, text)
    result.sorted_norms = per_config_norms
    return result


def smt_accuracy_check(runner: ExperimentRunner,
                       n_mixes: int = 4) -> Dict[str, float]:
    """Section VII-B SMT discussion proxy: SUF accuracy under sharing.

    We approximate the 2-way SMT experiment by running 2-core mixes (two
    threads contending on the shared outer levels) and reporting the
    average SUF accuracy, which the paper finds stays above 99% (dropping
    to ~92% for pathological same-trace mixes).
    """
    mixes = runner.mixes(cores=2)[:n_mixes]
    accuracies = []
    for mix in mixes:
        shared = run_mix(mix, cores=2, params=runner.params,
                         warmup=runner.scale.warmup, secure=True, suf=True)
        for result in shared.per_core:
            if result.gm is not None:
                accuracies.append(result.gm.suf_accuracy())
    return {"mean_suf_accuracy": amean(accuracies),
            "min_suf_accuracy": min(accuracies) if accuracies else 0.0}
