"""Single-core experiment drivers: one function per paper figure.

Each ``figN`` function takes an :class:`~repro.experiments.runner.
ExperimentRunner`, executes (or recalls) the simulations the paper's figure
needs, and returns a :class:`FigureResult` whose ``rows`` hold the same
series the figure plots and whose ``text`` renders them as a table.

Figures 2, 7, 8, 9 of the paper are schematics (no data) and have no
driver; Fig. 8's mechanism is exercised by ``tests/core/test_tsb.py``
instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..analysis.metrics import (amean, apki_breakdown, geomean,
                                load_miss_latency, prefetch_accuracy,
                                speedup, suf_accuracy)
from ..analysis.report import format_series, format_stacked, format_table
from ..core.classification import CATEGORIES
from ..energy.model import energy_per_kilo_instruction
from ..prefetchers.registry import PAPER_PREFETCHERS
from .runner import (BASELINE, Config, ExperimentRunner, nonsecure,
                     on_access_secure, on_commit_secure, ts_config)

#: The canonical mcf trace used by the paper's Fig. 5 drill-down.
MCF_TRACE = "605.mcf-1554B"


@dataclass
class FigureResult:
    """Data + rendered text for one reproduced figure."""

    name: str
    description: str
    columns: List[str]
    rows: Dict[str, List[float]] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def _speedups(runner: ExperimentRunner, config: Config) -> List[float]:
    """Per-trace speedups of ``config`` vs the non-secure no-prefetch
    baseline.  Batched through ``run_pool`` so ``jobs>1`` parallelizes
    across traces."""
    baselines = runner.run_pool(BASELINE)
    results = runner.run_pool(config)
    return [speedup(r, b) for r, b in zip(results, baselines)]


def fig1(runner: ExperimentRunner) -> FigureResult:
    """Fig. 1: speedup of each prefetcher under three training regimes.

    Bars per prefetcher: on-access on the non-secure system, on-access on
    the secure system, on-commit on the secure system; the red line is the
    secure system without prefetching.
    """
    columns = ["on-access/NS", "on-access/S", "on-commit/S"]
    rows: Dict[str, List[float]] = {}
    for name in PAPER_PREFETCHERS:
        rows[name] = [
            geomean(_speedups(runner, nonsecure(name))),
            geomean(_speedups(runner, on_access_secure(name))),
            geomean(_speedups(runner, on_commit_secure(name))),
        ]
    rows["no-pref (secure)"] = \
        [geomean(_speedups(runner, Config(secure=True)))] * 3
    text = format_table(
        "Fig. 1: speedup vs non-secure system with no prefetching",
        columns, rows)
    return FigureResult("fig1", "prefetcher speedups across regimes",
                        columns, rows, text)


def fig3(runner: ExperimentRunner) -> FigureResult:
    """Fig. 3: average L1D APKI split into Load / Prefetch / Commit, for
    the non-secure and secure systems with on-access prefetching."""
    categories = ["load", "prefetch", "commit"]
    bars: Dict[str, Dict[str, float]] = {}
    for name in ("none",) + PAPER_PREFETCHERS:
        for secure, tag in ((False, "NS"), (True, "S")):
            config = Config(prefetcher=name, secure=secure)
            results = runner.run_pool(config)
            splits = [apki_breakdown(r) for r in results]
            bars[f"{name}/{tag}"] = {
                c: amean(s[c] for s in splits) for c in categories}
    text = format_stacked("Fig. 3: average L1D accesses per kilo "
                          "instruction (on-access prefetching)",
                          categories, bars)
    rows = {label: [split[c] for c in categories]
            for label, split in bars.items()}
    return FigureResult("fig3", "L1D APKI breakdown", categories, rows,
                        text)


def fig4(runner: ExperimentRunner) -> FigureResult:
    """Fig. 4: average L1D load miss latency with on-access prefetching."""
    columns = ["on-access/NS", "on-access/S", "no-pref/NS", "no-pref/S"]
    nopref_ns = amean(load_miss_latency(r)
                      for r in runner.run_pool(BASELINE))
    nopref_s = amean(load_miss_latency(r)
                     for r in runner.run_pool(Config(secure=True)))
    rows: Dict[str, List[float]] = {}
    for name in PAPER_PREFETCHERS:
        oa_ns = amean(load_miss_latency(r)
                      for r in runner.run_pool(nonsecure(name)))
        oa_s = amean(load_miss_latency(r)
                     for r in runner.run_pool(on_access_secure(name)))
        rows[name] = [oa_ns, oa_s, nopref_ns, nopref_s]
    text = format_table("Fig. 4: average L1D load miss latency (cycles)",
                        columns, rows, value_format="{:8.1f}")
    return FigureResult("fig4", "L1D load miss latency", columns, rows,
                        text)


def fig5(runner: ExperimentRunner) -> FigureResult:
    """Fig. 5: the 605.mcf-1554B drill-down -- (a) speedup, (b) L1D
    traffic split, (c) L1D load miss latency."""
    trace = runner.trace(MCF_TRACE)
    base = runner.run(BASELINE, trace)
    columns = ["speedup/NS", "speedup/S", "latency/NS", "latency/S"]
    rows: Dict[str, List[float]] = {}
    stacked: Dict[str, Dict[str, float]] = {}
    for name in ("none",) + PAPER_PREFETCHERS:
        r_ns = runner.run(Config(prefetcher=name), trace)
        r_s = runner.run(Config(prefetcher=name, secure=True), trace)
        rows[name] = [speedup(r_ns, base), speedup(r_s, base),
                      load_miss_latency(r_ns), load_miss_latency(r_s)]
        stacked[f"{name}/NS"] = apki_breakdown(r_ns)
        stacked[f"{name}/S"] = apki_breakdown(r_s)
    text = (format_table(f"Fig. 5(a,c): {MCF_TRACE} speedup and L1D miss "
                         "latency (on-access prefetching)", columns, rows)
            + "\n\n"
            + format_stacked(f"Fig. 5(b): {MCF_TRACE} L1D APKI",
                             ["load", "prefetch", "commit"], stacked))
    return FigureResult("fig5", "mcf drill-down", columns, rows, text)


def fig6(runner: ExperimentRunner) -> FigureResult:
    """Fig. 6: train-level demand MPKI split into the four-mode taxonomy
    (uncovered / missed opportunity / late / commit-late) for on-access vs
    on-commit prefetching on the secure system."""
    bars: Dict[str, Dict[str, float]] = {}
    for name in PAPER_PREFETCHERS:
        for mode_config, tag in (
                (Config(prefetcher=name, secure=True, classify=True),
                 "on-access"),
                (on_commit_secure(name, classify=True), "on-commit")):
            results = runner.run_pool(mode_config)
            split: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
            for result in results:
                ki = result.kilo_instructions()
                if not ki or result.classification is None:
                    continue
                for cat in CATEGORIES:
                    split[cat] += result.classification[cat] / ki
            bars[f"{name}/{tag}"] = {
                c: split[c] / max(len(results), 1) for c in CATEGORIES}
    text = format_stacked(
        "Fig. 6: average train-level demand MPKI by taxonomy",
        list(CATEGORIES), bars)
    rows = {label: [split[c] for c in CATEGORIES]
            for label, split in bars.items()}
    return FigureResult("fig6", "miss taxonomy", list(CATEGORIES), rows,
                        text)


def fig10(runner: ExperimentRunner) -> FigureResult:
    """Fig. 10: timely-secure (TS) versions vs naive on-commit."""
    columns = ["on-commit/S", "TS/S"]
    rows: Dict[str, List[float]] = {}
    for name in PAPER_PREFETCHERS:
        rows[name] = [
            geomean(_speedups(runner, on_commit_secure(name))),
            geomean(_speedups(runner, ts_config(name))),
        ]
    rows["no-pref (secure)"] = \
        [geomean(_speedups(runner, Config(secure=True)))] * 2
    text = format_table(
        "Fig. 10: timely secure prefetchers vs naive on-commit "
        "(speedup vs non-secure no-prefetch)", columns, rows)
    return FigureResult("fig10", "TS variants", columns, rows, text)


def fig11(runner: ExperimentRunner) -> FigureResult:
    """Fig. 11: effect of SUF -- on-access non-secure, on-commit secure,
    and on-commit secure + SUF, per prefetcher (plus TSB rows)."""
    columns = ["on-access/NS", "on-commit/S", "on-commit/S+SUF"]
    rows: Dict[str, List[float]] = {}
    for name in PAPER_PREFETCHERS:
        rows[name] = [
            geomean(_speedups(runner, nonsecure(name))),
            geomean(_speedups(runner, on_commit_secure(name))),
            geomean(_speedups(runner, on_commit_secure(name, suf=True))),
        ]
    rows["tsb"] = [
        geomean(_speedups(runner, nonsecure("berti"))),
        geomean(_speedups(runner, ts_config("berti"))),
        geomean(_speedups(runner, ts_config("berti", suf=True))),
    ]
    rows["no-pref (secure)"] = \
        [geomean(_speedups(runner, Config(secure=True)))] * 3
    text = format_table("Fig. 11: speedup with the secure update filter",
                        columns, rows)
    return FigureResult("fig11", "SUF speedups", columns, rows, text)


def fig12(runner: ExperimentRunner) -> FigureResult:
    """Fig. 12: per-trace speedup of on-commit Berti, TSB, and TSB+SUF
    (SPEC-like and GAP-like suites)."""
    series: Dict[str, Dict[str, float]] = {
        "on-commit-berti": {}, "tsb": {}, "tsb+suf": {}}
    configs = {
        "on-commit-berti": on_commit_secure("berti"),
        "tsb": ts_config("berti"),
        "tsb+suf": ts_config("berti", suf=True),
    }
    runner.run_pool(BASELINE)  # batch-fill the cache for jobs>1
    for config in configs.values():
        runner.run_pool(config)
    for trace in runner.pool():
        base = runner.run(BASELINE, trace)
        for label, config in configs.items():
            series[label][trace.name] = speedup(
                runner.run(config, trace), base)
    text = format_series(
        "Fig. 12: per-trace speedup (vs non-secure, no prefetching)",
        series)
    rows = {label: list(values.values())
            for label, values in series.items()}
    result = FigureResult("fig12", "per-trace Berti/TSB/TSB+SUF",
                          list(series), rows, text)
    result.series = series
    return result


def fig13(runner: ExperimentRunner) -> FigureResult:
    """Fig. 13: average prefetch accuracy, baseline and TS versions."""
    columns = ["on-access/NS", "on-commit/S", "on-commit/S+SUF"]
    rows: Dict[str, List[float]] = {}
    for name in PAPER_PREFETCHERS:
        rows[name] = [
            100 * amean(prefetch_accuracy(r)
                        for r in runner.run_pool(nonsecure(name))),
            100 * amean(prefetch_accuracy(r)
                        for r in runner.run_pool(on_commit_secure(name))),
            100 * amean(prefetch_accuracy(r) for r in runner.run_pool(
                on_commit_secure(name, suf=True))),
        ]
        ts_name = "tsb" if name == "berti" else f"ts-{name}"
        rows[ts_name] = [
            float("nan"),
            100 * amean(prefetch_accuracy(r)
                        for r in runner.run_pool(ts_config(name))),
            100 * amean(prefetch_accuracy(r)
                        for r in runner.run_pool(ts_config(name,
                                                           suf=True))),
        ]
    text = format_table("Fig. 13: average prefetch accuracy (%)",
                        columns, rows, value_format="{:8.1f}")
    return FigureResult("fig13", "prefetch accuracy", columns, rows, text)


def fig14(runner: ExperimentRunner) -> FigureResult:
    """Fig. 14: dynamic energy of the memory hierarchy, normalized to the
    non-secure system without prefetching."""
    columns = ["on-access/NS", "on-commit/S", "on-commit/S+SUF"]
    base_energy = amean(energy_per_kilo_instruction(r)
                        for r in runner.run_pool(BASELINE))
    rows: Dict[str, List[float]] = {}

    def normalized(config: Config) -> float:
        value = amean(energy_per_kilo_instruction(r)
                      for r in runner.run_pool(config))
        return value / base_energy if base_energy else 0.0

    for name in PAPER_PREFETCHERS:
        rows[name] = [normalized(nonsecure(name)),
                      normalized(on_commit_secure(name)),
                      normalized(on_commit_secure(name, suf=True))]
    rows["tsb"] = [normalized(nonsecure("berti")),
                   normalized(ts_config("berti")),
                   normalized(ts_config("berti", suf=True))]
    rows["no-pref (secure)"] = [normalized(Config(secure=True))] * 3
    text = format_table(
        "Fig. 14: normalized dynamic energy (lower is better)",
        columns, rows)
    return FigureResult("fig14", "dynamic energy", columns, rows, text)


def suf_statistics(runner: ExperimentRunner) -> FigureResult:
    """Section VII-A prose numbers: SUF filter accuracy and traffic cut."""
    config = ts_config("berti", suf=True)
    columns = ["suf_accuracy_%", "l1d_apki", "l1d_apki_unfiltered"]
    rows: Dict[str, List[float]] = {}
    unfiltered = ts_config("berti")
    runner.run_pool(config)  # batch-fill the cache for jobs>1
    runner.run_pool(unfiltered)
    for trace in runner.pool():
        with_suf = runner.run(config, trace)
        without = runner.run(unfiltered, trace)
        rows[trace.name] = [
            100 * suf_accuracy(with_suf),
            with_suf.apki(with_suf.l1d),
            without.apki(without.l1d),
        ]
    rows["average"] = [amean(v[i] for v in rows.values())
                       for i in range(3)]
    text = format_table("SUF accuracy and L1D traffic (TSB+SUF vs TSB)",
                        columns, rows, value_format="{:8.1f}")
    return FigureResult("suf_statistics", "SUF accuracy/traffic", columns,
                        rows, text)


ALL_FIGURES = {
    "fig1": fig1, "fig3": fig3, "fig4": fig4, "fig5": fig5, "fig6": fig6,
    "fig10": fig10, "fig11": fig11, "fig12": fig12, "fig13": fig13,
    "fig14": fig14, "suf_statistics": suf_statistics,
}


def figure_drivers() -> Dict[str, "object"]:
    """All figure drivers, including the multi-core Fig. 15."""
    from .multicore_experiments import fig15
    drivers: Dict[str, object] = dict(ALL_FIGURES)
    drivers["fig15"] = fig15
    return drivers


def _run_spec_or_driver(runner: ExperimentRunner, name: str,
                        driver) -> FigureResult:
    """Prefer the committed campaign spec, falling back to ``driver``.

    When ``campaigns/<name>.json`` exists, the figure runs through the
    declarative engine and (unless ``REPRO_CAMPAIGN_PARITY=0``) the
    legacy driver re-renders from the now-memoized results -- zero
    extra simulations -- to assert the spec's output is identical.
    """
    import os

    from ..campaign.engine import run_campaign
    from ..campaign.spec import find_campaign_spec, load_spec

    path = find_campaign_spec(name)
    if path is None:
        return driver(runner)
    result = run_campaign(load_spec(path), runner)
    if os.environ.get("REPRO_CAMPAIGN_PARITY", "1") != "0":
        legacy = driver(runner)
        if legacy.text != result.text:
            raise RuntimeError(
                f"campaign spec {path} renders differently from the "
                f"legacy {name} driver:\n--- spec ---\n{result.text}\n"
                f"--- driver ---\n{legacy.text}")
    return result


def run_figure(runner: ExperimentRunner, name: str) -> FigureResult:
    """Run one figure with partial-result rendering.

    Figures with a committed spec under ``campaigns/`` run through the
    declarative campaign engine (with a parity assertion against the
    imperative driver); the rest run the driver directly.  With a
    failsoft runner, cells whose simulation permanently failed render
    as ``n/a`` and a failure summary (which cell, why) is appended to
    the figure text instead of the figure aborting.
    """
    drivers = figure_drivers()
    try:
        driver = drivers[name]
    except KeyError:
        raise ValueError(f"unknown figure {name!r}; "
                         f"known: {sorted(drivers)}") from None
    already_failed = len(runner.failures)
    result = _run_spec_or_driver(runner, name, driver)
    new_failures = runner.failures[already_failed:]
    if new_failures:
        result.text += "\n\n" + runner.failure_summary(new_failures)
    return result
