"""X-LQ: the extended load queue used by TSB (Section V-C).

The X-LQ shadows the load queue one-to-one (128 entries, indexed by LQ entry
id) and preserves, across the speculative phase, the two facts naive
on-commit Berti loses:

* the **access timestamp** (16 bits of the core clock) -- when the load
  actually needed its data;
* the **fetch latency** to the GM (12 bits) -- the true cost of bringing the
  line in, not the 1-cycle GM->L1D on-commit write.

On an L1D miss the entry is validated and the access timestamp latched; when
the fill reaches the GM the latency is recorded.  On a hit to a prefetched
line the ``hitp`` bit is set and the latency of that prefetched line is
copied in.  At commit, the owning load (and only it -- entries are private
to their LQ slot) reads its entry to train TSB, then the entry is
invalidated.  The whole structure is flushed on a domain switch so no
transient timing survives into another protection domain.

Timestamps are stored in 16 bits; the reconstruction in :meth:`read` assumes
the access happened within 2^16 cycles of commit, which the ROB lifetime
guarantees (and which unit tests exercise across wraparound).

Storage: 128 x (1 valid + 1 hitp + 16 timestamp + 12 latency) = 0.47 KB.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

TS_BITS = 16
TS_MASK = (1 << TS_BITS) - 1
LAT_BITS = 12
LAT_MASK = (1 << LAT_BITS) - 1


class XLQEntry(NamedTuple):
    """Decoded view of one X-LQ entry at commit time."""

    #: Reconstructed absolute access cycle.
    access_cycle: int
    #: True fetch latency to the GM, in cycles.
    fetch_latency: int
    #: The access hit a prefetched line (Hitp).
    prefetch_hit: bool


class _Slot:
    __slots__ = ("valid", "hitp", "ts", "latency")

    def __init__(self) -> None:
        self.valid = False
        self.hitp = False
        self.ts = 0
        self.latency = 0


class XLQ:
    """The dual-ported extended load queue."""

    def __init__(self, entries: int = 128) -> None:
        self.entries = entries
        self._slots: List[_Slot] = [_Slot() for _ in range(entries)]

    # ------------------------------------------------------------------
    # speculative-phase writes
    # ------------------------------------------------------------------

    def record_miss(self, slot: int, access_cycle: int) -> None:
        """L1D miss: validate the entry and latch the access timestamp."""
        entry = self._slots[slot % self.entries]
        entry.valid = True
        entry.hitp = False
        entry.ts = access_cycle & TS_MASK
        entry.latency = 0

    def record_fill(self, slot: int, fetch_latency: int) -> None:
        """The fill reached the GM: record the true fetch latency."""
        entry = self._slots[slot % self.entries]
        if entry.valid:
            entry.latency = min(fetch_latency, LAT_MASK)

    def record_prefetch_hit(self, slot: int, access_cycle: int,
                            line_latency: int) -> None:
        """Hit on a prefetched line: set Hitp and copy the line's latency."""
        entry = self._slots[slot % self.entries]
        entry.valid = True
        entry.hitp = True
        entry.ts = access_cycle & TS_MASK
        entry.latency = min(line_latency, LAT_MASK)

    # ------------------------------------------------------------------
    # commit-time read
    # ------------------------------------------------------------------

    def read(self, slot: int, commit_cycle: int) -> Optional[XLQEntry]:
        """Read-and-invalidate the slot's entry at commit.

        Returns ``None`` for invalid entries (regular L1D hits take no
        training action, Section V-C).  Only the committing load's own slot
        is ever passed here, modelling the X-LQ's isolation property.
        """
        entry = self._slots[slot % self.entries]
        if not entry.valid:
            return None
        entry.valid = False
        age = (commit_cycle - entry.ts) & TS_MASK
        return XLQEntry(commit_cycle - age, entry.latency, entry.hitp)

    def flush(self) -> None:
        """Domain switch: no transient timing may cross domains."""
        for entry in self._slots:
            entry.valid = False

    def occupancy(self) -> int:
        return sum(1 for entry in self._slots if entry.valid)

    def storage_bits(self) -> int:
        return self.entries * (1 + 1 + TS_BITS + LAT_BITS)
