"""TSB -- Timely Secure Berti (Section V-C).

TSB is Berti trained **at commit** but with the timing facts an on-commit
prefetcher otherwise loses, preserved in the X-LQ:

* the learning window is computed against the load's true **access time**
  and **GM fetch latency** (``access_cycle - fetch_latency``), not against
  the commit time and the 1-cycle on-commit write latency;
* the history records commit-ordered entries, so delta search runs over
  committed instructions only -- TSB never trains on transient state.

In this reproduction the mechanism splits naturally: the Berti learning rule
(:class:`~repro.prefetchers.berti.BertiPrefetcher`) already computes its
timeliness window from the ``access_cycle`` and ``fetch_latency`` fields of
each :class:`~repro.prefetchers.base.TrainingEvent`; the simulator's commit
stage builds those events from the X-LQ when TSB is selected (see
``repro.sim.system``).  :class:`TSBPrefetcher` pins down the configuration
and accounts for the extra 0.47 KB of X-LQ storage (3.01 KB total over a
prefetcher-less system).

Security (Section V-C): TSB trains and triggers only at commit; the X-LQ is
flushed on domain switches; an entry is readable only by its own load at its
own commit.  Under GhostMinion's strictness ordering a transient instruction
cannot perturb the fill latency of a bound-to-commit instruction, so the
stored latency carries no transient information.
"""

from __future__ import annotations

from ..prefetchers.berti import BertiPrefetcher
from .xlq import XLQ


class TSBPrefetcher(BertiPrefetcher):
    """Timely Secure Berti: Berti + X-LQ-preserved access-time training."""

    name = "tsb"
    #: TSB requires the simulator to source training events from the X-LQ.
    requires_xlq = True

    def __init__(self, lq_entries: int = 128) -> None:
        super().__init__()
        #: The X-LQ itself lives with the core's load queue; the simulator
        #: instantiates and drives it.  Kept here for storage accounting and
        #: for unit tests that exercise TSB standalone.
        self.xlq = XLQ(lq_entries)

    def flush(self) -> None:
        super().flush()
        self.xlq.flush()

    def storage_bits(self) -> int:
        return super().storage_bits() + self.xlq.storage_bits()
