"""The paper's contributions: SUF, TSB, TS variants, miss taxonomy."""

from .classification import (CAT_COMMIT_LATE, CAT_LATE,
                             CAT_MISSED_OPPORTUNITY, CAT_UNCOVERED,
                             CATEGORIES, MissClassifier)
from .suf import (HIT_DRAM, HIT_L1D, HIT_L2, HIT_LLC, HitLevelQueue,
                  SUFDecision, suf_decide)
from .timely import (BINGO_LATENESS_THRESHOLD, LATENESS_THRESHOLD,
                     LatenessMonitor, PhaseChangeDetector, TimelyPrefetcher,
                     make_timely)
from .tsb import TSBPrefetcher
from .xlq import XLQ, XLQEntry

__all__ = [
    "CAT_COMMIT_LATE", "CAT_LATE", "CAT_MISSED_OPPORTUNITY",
    "CAT_UNCOVERED", "CATEGORIES", "MissClassifier",
    "HIT_DRAM", "HIT_L1D", "HIT_L2", "HIT_LLC",
    "HitLevelQueue", "SUFDecision", "suf_decide",
    "BINGO_LATENESS_THRESHOLD", "LATENESS_THRESHOLD", "LatenessMonitor",
    "PhaseChangeDetector", "TimelyPrefetcher", "make_timely",
    "TSBPrefetcher", "XLQ", "XLQEntry",
]
