"""SUF -- the Secure Update Filter (Section IV).

GhostMinion restores the non-speculative cache hierarchy at commit time with
on-commit writes (GM hit) or re-fetches (GM miss).  Many of these updates are
redundant: re-fetching a line the L1D already holds only burns an L1D port to
refresh LRU bits, and on-commit write propagation walks up the hierarchy
until it finds a level that already has the line.

SUF records, in a 2-bit *hit level* per load-queue entry, which level served
the data at access time.  At commit:

* hit level ``00`` (L1D or GM) -> **drop** the update entirely;
* hit level ``01`` (L2)        -> move GM->L1D, but do not propagate further;
* hit level ``10`` (LLC)       -> move GM->L1D, propagate to L2, stop there;
* hit level ``11`` (DRAM)      -> full propagation (no filtering).

The truncated propagation is realised with *writeback bits* stored on cache
lines (Fig. 7): the L1D line's bit says whether its eviction must write back
to the L2, and the L1D line additionally carries the L2's bit so it travels
with the data.

Storage: 0.12 KB -- 2 bits x 128 LQ entries (0.03 KB) plus 1 bit x 768 L1D
lines (0.09 KB).

SUF mispredicts when the recorded level evicted the line between access and
commit; the only cost is a longer re-fetch later (never a correctness or
security problem, since dropped updates concern clean, committed data).
"""

from __future__ import annotations

from typing import List, NamedTuple

#: The 2-bit hit-level encoding (Section IV).  These values equal the
#: hierarchy-level indices of ``repro.sim.cache`` (asserted by tests); they
#: are redefined here so the contribution package has no dependency on the
#: simulation substrate.
HIT_L1D = 0   # data from L1D, or from the GM probed in parallel
HIT_L2 = 1
HIT_LLC = 2
HIT_DRAM = 3


class SUFDecision(NamedTuple):
    """What to do with one commit-time hierarchy update."""

    #: Drop the update entirely (re-fetch and propagation).
    drop: bool
    #: Install the L1D line with its writeback-to-L2 bit set.
    gm_propagate: bool
    #: The L2 line's writeback-to-LLC bit, carried alongside (Fig. 7).
    wbb: bool


def suf_decide(hit_level: int) -> SUFDecision:
    """The SUF filtering rule, as a pure function of the 2-bit hit level."""
    if hit_level <= HIT_L1D:
        return SUFDecision(drop=True, gm_propagate=False, wbb=False)
    if hit_level == HIT_L2:
        return SUFDecision(drop=False, gm_propagate=False, wbb=False)
    if hit_level == HIT_LLC:
        return SUFDecision(drop=False, gm_propagate=True, wbb=False)
    return SUFDecision(drop=False, gm_propagate=True, wbb=True)


class HitLevelQueue:
    """The LQ-side SUF storage: a 2-bit hit level per load-queue entry.

    Step 1 of Fig. 7: the level that served a load is propagated down with
    the response and latched here; the commit stage reads it to drive
    :func:`suf_decide`.
    """

    def __init__(self, lq_entries: int = 128,
                 l1d_lines: int = 768) -> None:
        self.lq_entries = lq_entries
        self.l1d_lines = l1d_lines
        self._levels: List[int] = [HIT_DRAM] * lq_entries

    def record(self, slot: int, hit_level: int) -> None:
        if not 0 <= hit_level <= HIT_DRAM:
            raise ValueError(f"hit level {hit_level} does not fit in 2 bits")
        self._levels[slot % self.lq_entries] = hit_level

    def read(self, slot: int) -> int:
        return self._levels[slot % self.lq_entries]

    def flush(self) -> None:
        """Clear on pipeline flush / domain switch (conservative default)."""
        for i in range(self.lq_entries):
            self._levels[i] = HIT_DRAM

    def storage_bits(self) -> int:
        """0.03 KB at the LQ + 0.09 KB of L1D writeback bits = 0.12 KB."""
        return self.lq_entries * 2 + self.l1d_lines * 1
