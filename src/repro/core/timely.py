"""Timely-secure (TS) variants of non-self-timing prefetchers (Section V-D).

Moving a prefetcher to on-commit triggering costs timeliness.  For
prefetchers that cannot re-time themselves the paper compensates with a
*lateness-driven* control loop:

* **lateness** = late prefetches / useful prefetches, monitored over fixed
  intervals of demand misses (512 misses for L1 prefetchers -- the L1D's
  line count -- and 4096 for L2 prefetchers, half the L2's);
* if lateness exceeds the threshold (0.14; 0.05 for Bingo, whose late rate
  is naturally lower) and **increased for two consecutive intervals**, the
  prefetch *distance* is incremented (single-interval reactions proved
  noisy);
* a phase-change detector resets the distance to its base value when the
  application's miss behaviour shifts abruptly.

What "distance" means is per-prefetcher:

* TS-stride / TS-IPCP -- the stride multiple at which prefetching starts;
* TS-SPP+PPF -- the number of leading path deltas to *skip* (k in 2..5 per
  the paper's empirical analysis) while SPP keeps learning every delta;
* TS-Bingo -- a Tempo-inspired region lookahead: replay the predicted
  footprint shifted ``lookahead`` regions ahead of the trigger.

:class:`TimelyPrefetcher` wraps any baseline prefetcher with this loop.  The
simulator feeds it per-demand feedback (miss? late? useful?) via
:meth:`note_demand`.
"""

from __future__ import annotations

from typing import List, Optional

from ..prefetchers.base import PrefetchRequest, Prefetcher, TrainingEvent
from ..prefetchers.bingo import BingoPrefetcher
from ..prefetchers.ip_stride import IPStridePrefetcher
from ..prefetchers.ipcp import IPCPPrefetcher
from ..prefetchers.spp import SPPPrefetcher

#: Paper-default lateness thresholds.
LATENESS_THRESHOLD = 0.14
BINGO_LATENESS_THRESHOLD = 0.05
#: Paper-default monitoring intervals, in demand misses at the train level.
L1_INTERVAL_MISSES = 512
L2_INTERVAL_MISSES = 4096


class PhaseChangeDetector:
    """Detects abrupt shifts in miss behaviour (after [26]).

    Compares consecutive intervals' miss-per-event ratios; a relative change
    beyond ``sensitivity`` flags a phase change.
    """

    def __init__(self, sensitivity: float = 0.5) -> None:
        self.sensitivity = sensitivity
        self._events = 0
        self._misses = 0
        self._last_ratio: Optional[float] = None

    def note(self, miss: bool) -> None:
        self._events += 1
        if miss:
            self._misses += 1

    def end_interval(self) -> bool:
        """Close the interval; return True when a phase change is detected."""
        if not self._events:
            return False
        ratio = self._misses / self._events
        self._events = 0
        self._misses = 0
        last, self._last_ratio = self._last_ratio, ratio
        if last is None or last == 0.0:
            return False
        return abs(ratio - last) / last > self.sensitivity


class LatenessMonitor:
    """Interval-based prefetch lateness tracking with 2-interval hysteresis."""

    def __init__(self, interval_misses: int, threshold: float) -> None:
        self.interval_misses = interval_misses
        self.threshold = threshold
        self._misses = 0
        self._late = 0
        self._useful = 0
        self._triggers = 0
        self._last_lateness: Optional[float] = None
        self._rising_intervals = 0

    def note_triggers(self, count: int) -> None:
        """The prefetcher produced ``count`` requests this event."""
        self._triggers += count

    def note_demand(self, miss: bool, late: bool, useful: bool) -> bool:
        """Record one demand's outcome; return True when the distance
        should be incremented (interval boundary + 2 rising intervals)."""
        if late:
            self._late += 1
        if useful:
            self._useful += 1
        if not miss:
            return False
        self._misses += 1
        if self._misses < self.interval_misses:
            return False
        return self._end_interval()

    def _end_interval(self) -> bool:
        misses = self._misses
        self._misses = 0
        lateness = self._late / self._useful if self._useful else 0.0
        # Fully-degenerate on-commit behaviour: the prefetcher triggers
        # plenty of requests but none ever becomes useful -- every target
        # was already demanded by trigger time (infinitely late).  Treat
        # it as over-threshold so the distance grows until the targets
        # outrun the demand front.
        if not self._useful and self._triggers >= misses // 2:
            lateness = 1.0
        self._late = 0
        self._useful = 0
        self._triggers = 0
        self._last_lateness = lateness
        # Two consecutive over-threshold intervals are required before
        # acting -- reacting to a single interval proved noisy (Section
        # V-D).
        if lateness > self.threshold:
            self._rising_intervals += 1
        else:
            self._rising_intervals = 0
        if self._rising_intervals >= 2:
            self._rising_intervals = 0
            return True
        return False

    def reset(self) -> None:
        self._misses = 0
        self._late = 0
        self._useful = 0
        self._triggers = 0
        self._last_lateness = None
        self._rising_intervals = 0


class TimelyPrefetcher(Prefetcher):
    """Wrap a baseline prefetcher with the TS lateness control loop."""

    #: Hard caps keeping the adapted distance sane.
    MAX_DISTANCE = 8
    MAX_SKIP = 5
    MIN_SKIP = 0
    MAX_LOOKAHEAD = 2

    def __init__(self, inner: Prefetcher, *,
                 interval_misses: Optional[int] = None,
                 threshold: Optional[float] = None) -> None:
        self.inner = inner
        self.name = "ts-" + inner.name
        self.train_level = inner.train_level
        if threshold is None:
            threshold = BINGO_LATENESS_THRESHOLD \
                if isinstance(inner, BingoPrefetcher) else LATENESS_THRESHOLD
        if interval_misses is None:
            interval_misses = L1_INTERVAL_MISSES if inner.train_level == 0 \
                else L2_INTERVAL_MISSES
        self.monitor = LatenessMonitor(interval_misses, threshold)
        self.phase_detector = PhaseChangeDetector()
        #: TS-Bingo region lookahead (Tempo-style timing compensation).
        self.lookahead = 0

    # ------------------------------------------------------------------
    # feedback from the simulator
    # ------------------------------------------------------------------

    def note_demand(self, miss: bool, late: bool, useful: bool) -> None:
        """Per-demand outcome at the train level, fed by the simulator."""
        self.phase_detector.note(miss)
        if self.monitor.note_demand(miss, late, useful):
            if self.phase_detector.end_interval():
                self.on_phase_change()
            else:
                self._increase_distance()

    def _increase_distance(self) -> None:
        inner = self.inner
        if isinstance(inner, (IPStridePrefetcher, IPCPPrefetcher)):
            inner.distance = min(inner.distance + 1, self.MAX_DISTANCE)
        elif isinstance(inner, SPPPrefetcher):
            inner.skip_deltas = min(inner.skip_deltas + 1, self.MAX_SKIP)
        elif isinstance(inner, BingoPrefetcher):
            self.lookahead = min(self.lookahead + 1, self.MAX_LOOKAHEAD)

    # ------------------------------------------------------------------
    # prefetcher interface (delegated)
    # ------------------------------------------------------------------

    def train(self, event: TrainingEvent) -> List[PrefetchRequest]:
        requests = self.inner.train(event)
        self.monitor.note_triggers(len(requests))
        if self.lookahead and requests \
                and isinstance(self.inner, BingoPrefetcher):
            shift = self.lookahead * self.inner.region_blocks
            requests = requests + [
                PrefetchRequest(req.block + shift, req.fill_level)
                for req in requests]
        return requests

    def on_fill(self, block: int, cycle: int, latency: int,
                prefetched: bool) -> None:
        self.inner.on_fill(block, cycle, latency, prefetched)

    def on_phase_change(self) -> None:
        self.inner.on_phase_change()
        self.lookahead = 0
        self.monitor.reset()

    def flush(self) -> None:
        self.inner.flush()
        self.monitor.reset()
        self.lookahead = 0

    def storage_bits(self) -> int:
        # Inner tables + interval counters (3 x 16b), lateness registers
        # (2 x 16b), distance/skip register (4b), phase detector (2 x 16b).
        return self.inner.storage_bits() + 3 * 16 + 2 * 16 + 4 + 2 * 16


def make_timely(inner: Prefetcher, *,
                interval_misses: Optional[int] = None,
                threshold: Optional[float] = None) -> TimelyPrefetcher:
    """Convenience factory: wrap ``inner`` in the TS control loop.

    TS-SPP+PPF starts with the paper's empirically-found skip of k=2.
    """
    if isinstance(inner, SPPPrefetcher):
        inner.skip_deltas = 2
        inner.base_skip = 2
    wrapper = TimelyPrefetcher(inner, interval_misses=interval_misses,
                               threshold=threshold)
    return wrapper
