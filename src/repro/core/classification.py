"""Demand-miss taxonomy for secure prefetching (Section III-B, Fig. 6).

The paper introduces four categories of demand miss at the prefetcher's
train level, evaluated by comparing the real (possibly on-commit) prefetcher
against a *shadow* copy trained on-access:

* **late prefetch** -- the miss merged with an in-flight prefetch MSHR entry
  (the traditional late prefetch);
* **commit-late prefetch** (new) -- no prefetch had been triggered when the
  demand arrived, but the on-commit prefetcher *does* trigger it shortly
  after (its trigger was still waiting to commit), and the shadow on-access
  prefetcher had already triggered it: lateness caused purely by waiting for
  commit;
* **missed opportunity** -- the on-access shadow would have covered the
  miss, but the on-commit prefetcher never predicts it (commit-order
  training learned different patterns);
* **uncovered** -- neither would have covered it.

The shadow prefetcher trains on the access stream (including wrong-path
loads, like any on-access prefetcher would) but issues nothing into the
memory system -- its predictions are only logged.  Commit-late resolution is
retrospective: a miss stays pending for ``window`` cycles to see whether the
real prefetcher issues the block.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Optional, Tuple

from ..prefetchers.base import Prefetcher, TrainingEvent

CAT_UNCOVERED = "uncovered"
CAT_MISSED_OPPORTUNITY = "missed_opportunity"
CAT_LATE = "late"
CAT_COMMIT_LATE = "commit_late"

CATEGORIES = (CAT_UNCOVERED, CAT_MISSED_OPPORTUNITY, CAT_LATE,
              CAT_COMMIT_LATE)


class MissClassifier:
    """Classifies train-level demand misses into the Fig. 6 categories."""

    #: How many distinct predicted blocks each log remembers.
    LOG_ENTRIES = 8192

    def __init__(self, shadow: Optional[Prefetcher],
                 window: int = 500, commit_mode: bool = True) -> None:
        #: Shadow prefetcher trained on-access.  ``None`` when the real
        #: prefetcher itself runs on-access (commit-late and missed
        #: opportunity are impossible by construction).
        self.shadow = shadow
        #: Cycles a miss waits for a real prefetch before being resolved
        #: (roughly the ROB drain time).
        self.window = window
        #: Whether the *real* prefetcher trains on-commit.  The commit-late
        #: and missed-opportunity categories are defined relative to an
        #: on-access shadow, so with on-access training everything not
        #: late is simply uncovered (the paper's on-access bars in Fig. 6).
        self.commit_mode = commit_mode
        self.counts: Dict[str, int] = {cat: 0 for cat in CATEGORIES}

        #: block -> cycle the shadow last predicted it.
        self._shadow_log: "OrderedDict[int, int]" = OrderedDict()
        #: block -> cycle the real prefetcher last issued it.
        self._real_log: "OrderedDict[int, int]" = OrderedDict()
        #: Misses awaiting retrospective commit-late resolution.
        self._pending: Deque[Tuple[int, int, bool]] = deque()

    # ------------------------------------------------------------------
    # feeds
    # ------------------------------------------------------------------

    def on_access(self, event: TrainingEvent) -> None:
        """Train the shadow on one access-stream event; log its requests."""
        if self.shadow is None:
            return
        for request in self.shadow.train(event):
            self._log(self._shadow_log, request.block, event.cycle)

    def on_real_prefetch(self, block: int, cycle: int) -> None:
        """The real prefetcher issued ``block`` at ``cycle``."""
        self._log(self._real_log, block, cycle)

    def _log(self, log: "OrderedDict[int, int]", block: int,
             cycle: int) -> None:
        log[block] = cycle
        log.move_to_end(block)
        if len(log) > self.LOG_ENTRIES:
            log.popitem(last=False)

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------

    def classify_miss(self, block: int, cycle: int,
                      merged_into_prefetch: bool) -> None:
        """Record one train-level demand miss for classification."""
        self.resolve(cycle)
        if merged_into_prefetch:
            self.counts[CAT_LATE] += 1
            return
        shadow_covered = self._shadow_log.get(block)
        shadow_hit = shadow_covered is not None and shadow_covered <= cycle
        if self.shadow is None or not self.commit_mode:
            self.counts[CAT_UNCOVERED] += 1
            return
        self._pending.append((cycle, block, shadow_hit))

    def resolve(self, now: int) -> None:
        """Resolve pending misses whose observation window has passed."""
        window = self.window
        pending = self._pending
        while pending and pending[0][0] + window < now:
            cycle, block, shadow_hit = pending.popleft()
            self._resolve_one(cycle, block, shadow_hit)

    def finalize(self) -> None:
        """Resolve everything at end of simulation."""
        while self._pending:
            cycle, block, shadow_hit = self._pending.popleft()
            self._resolve_one(cycle, block, shadow_hit)

    def _resolve_one(self, cycle: int, block: int,
                     shadow_hit: bool) -> None:
        real_cycle = self._real_log.get(block)
        real_soon = real_cycle is not None \
            and cycle < real_cycle <= cycle + self.window
        if shadow_hit and real_soon:
            self.counts[CAT_COMMIT_LATE] += 1
        elif shadow_hit:
            self.counts[CAT_MISSED_OPPORTUNITY] += 1
        else:
            self.counts[CAT_UNCOVERED] += 1

    # ------------------------------------------------------------------

    def total_misses(self) -> int:
        return sum(self.counts.values())

    def mpki(self, kilo_instructions: float) -> Dict[str, float]:
        """Per-category misses per kilo instruction."""
        if kilo_instructions <= 0:
            return {cat: 0.0 for cat in CATEGORIES}
        return {cat: count / kilo_instructions
                for cat, count in self.counts.items()}
