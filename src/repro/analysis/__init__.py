"""Metrics and report rendering for the paper's evaluation."""

from .metrics import (amean, apki, apki_breakdown, geomean,
                      load_miss_latency, mpki, mshr_full_fraction,
                      prefetch_accuracy, prefetch_coverage, speedup,
                      speedups, suf_accuracy, timeseries_column,
                      timeseries_summary, traffic, train_level_mpki)
from .report import (format_profile, format_series, format_stacked,
                     format_table)

__all__ = [
    "amean", "apki", "apki_breakdown", "geomean", "load_miss_latency",
    "mpki", "mshr_full_fraction", "prefetch_accuracy", "prefetch_coverage",
    "speedup", "speedups", "suf_accuracy", "timeseries_column",
    "timeseries_summary", "traffic", "train_level_mpki",
    "format_profile", "format_series", "format_stacked", "format_table",
]
