"""Plain-text table/series rendering for experiment outputs.

Every experiment driver produces rows that these helpers print in the
layout of the paper's figures (bar groups become columns, series become
rows), so benchmark logs read like the paper's tables.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence


def _cell(value: Optional[float], value_format: str) -> str:
    """One rendered table cell; missing/failed values become ``n/a``.

    Failed simulations propagate NaN through the metric layer, so a NaN
    here means "this cell's data could not be computed" -- render it
    honestly instead of printing ``nan``.
    """
    if value is None:
        return "-"
    if isinstance(value, float) and math.isnan(value):
        return "n/a"
    return value_format.format(value)


def format_table(title: str, columns: Sequence[str],
                 rows: Mapping[str, Sequence[float]],
                 value_format: str = "{:8.3f}") -> str:
    """Render a labelled table: one line per row label."""
    label_width = max([len(label) for label in rows] + [len("config")])
    col_width = max([len(c) for c in columns] + [8]) + 2
    lines = [title, "=" * len(title)]
    header = "config".ljust(label_width) + "".join(
        c.rjust(col_width) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows.items():
        cells = "".join(
            _cell(v, value_format).rjust(col_width) for v in values)
        lines.append(label.ljust(label_width) + cells)
    return "\n".join(lines)


def format_series(title: str, series: Mapping[str, Mapping[str, float]],
                  value_format: str = "{:7.3f}") -> str:
    """Render per-trace series: one column per series, one line per trace."""
    names: List[str] = []
    for values in series.values():
        for name in values:
            if name not in names:
                names.append(name)
    label_width = max([len(n) for n in names] + [len("trace")])
    col_width = max([len(s) for s in series] + [8]) + 2
    lines = [title, "=" * len(title)]
    header = "trace".ljust(label_width) + "".join(
        s.rjust(col_width) for s in series)
    lines.append(header)
    lines.append("-" * len(header))
    for name in names:
        cells = ""
        for values in series.values():
            cells += _cell(values.get(name), value_format).rjust(col_width)
        lines.append(name.ljust(label_width) + cells)
    return "\n".join(lines)


def format_profile(report: Mapping[str, Sequence[float]],
                   title: str = "wall-clock profile") -> str:
    """Render a :meth:`repro.obs.PhaseProfiler.report` as a table.

    One line per phase: total seconds, times entered, and mean seconds
    per entry -- the ``repro sweep``/``figure`` post-run accounting.
    """
    lines = [title, "=" * len(title)]
    width = max([len(name) for name in report] + [len("phase")])
    lines.append("phase".ljust(width) + "   seconds" + "    count"
                 + "     mean")
    lines.append("-" * (width + 26))
    for name, (seconds, count) in report.items():
        mean = seconds / count if count else 0.0
        lines.append(name.ljust(width) + f"{seconds:9.3f}s"
                     + f"{count:9d}" + f"{mean:8.3f}s")
    return "\n".join(lines)


def format_stacked(title: str, categories: Sequence[str],
                   bars: Mapping[str, Mapping[str, float]],
                   value_format: str = "{:7.2f}") -> str:
    """Render stacked bars (e.g. the Fig. 3 APKI split) as a table."""
    label_width = max([len(label) for label in bars] + [len("bar")])
    col_width = max([len(c) for c in categories] + [8]) + 2
    lines = [title, "=" * len(title)]
    header = "bar".ljust(label_width) + "".join(
        c.rjust(col_width) for c in categories) + "   total".rjust(10)
    lines.append(header)
    lines.append("-" * len(header))
    for label, split in bars.items():
        cells = "".join(
            _cell(split.get(c, 0.0), value_format).rjust(col_width)
            for c in categories)
        total = sum(split.values())
        lines.append(label.ljust(label_width) + cells
                     + _cell(total, value_format).rjust(10))
    return "\n".join(lines)
