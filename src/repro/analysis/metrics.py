"""Metrics used throughout the paper's evaluation.

Conventions follow Section VII: normalized values are combined with the
geometric mean, raw values with the arithmetic mean; speedups are relative
to the non-secure system without prefetching.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from ..sim.stats import CacheStats, REQ_COMMIT, REQ_LOAD, REQ_PREFETCH
from ..sim.system import SimResult


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (used for normalized metrics, Section VII).

    NaN inputs (failed simulations in failsoft sweeps) poison the mean so
    aggregates never silently average over missing cells; the report
    layer renders the NaN as ``n/a``.
    """
    values = list(values)
    if any(isinstance(v, float) and math.isnan(v) for v in values):
        return float("nan")
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def amean(values: Iterable[float]) -> float:
    """Arithmetic mean (used for raw metrics, Section VII)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def speedup(result: SimResult, baseline: SimResult) -> float:
    """IPC ratio vs. the baseline run of the same trace."""
    if baseline.ipc <= 0:
        return 0.0
    return result.ipc / baseline.ipc


def speedups(results: Sequence[SimResult],
             baselines: Sequence[SimResult]) -> List[float]:
    """Pairwise speedups; callers typically geomean these."""
    return [speedup(r, b) for r, b in zip(results, baselines)]


def apki(result: SimResult, level: str = "l1d") -> float:
    """Accesses per kilo instruction at one level (Fig. 3)."""
    stats: CacheStats = getattr(result, level)
    ki = result.kilo_instructions()
    return stats.total_accesses() / ki if ki else 0.0


def apki_breakdown(result: SimResult, level: str = "l1d"
                   ) -> Dict[str, float]:
    """The Fig. 3 / Fig. 5(b) traffic split: Load / Prefetch / Commit.

    Commit lumps GhostMinion's on-commit writes, re-fetches, and the
    writeback propagation they cause; Load includes demand stores.
    """
    stats: CacheStats = getattr(result, level)
    ki = result.kilo_instructions()
    if not ki:
        return {"load": 0.0, "prefetch": 0.0, "commit": 0.0}
    load = stats.accesses[REQ_LOAD] + stats.accesses["store"]
    prefetch = stats.accesses[REQ_PREFETCH]
    commit = stats.accesses[REQ_COMMIT] + stats.accesses["writeback"]
    return {"load": load / ki, "prefetch": prefetch / ki,
            "commit": commit / ki}


def mpki(result: SimResult, level: str = "l1d") -> float:
    """Demand misses per kilo instruction at one level."""
    stats: CacheStats = getattr(result, level)
    ki = result.kilo_instructions()
    return stats.demand_misses() / ki if ki else 0.0


def train_level_mpki(result: SimResult) -> float:
    """MPKI at the level the prefetcher trains at (Fig. 6's y-axis)."""
    return mpki(result, "l1d" if result.train_level == 0 else "l2")


def load_miss_latency(result: SimResult, level: str = "l1d") -> float:
    """Average demand-load miss latency in cycles (Fig. 4 / Fig. 5(c))."""
    stats: CacheStats = getattr(result, level)
    return stats.load_miss_latency_avg()


def prefetch_accuracy(result: SimResult) -> float:
    """Accuracy at the prefetcher's fill levels (Fig. 13).

    Useful / (useful + useless) over prefetches with a resolved outcome,
    aggregated across the levels the prefetcher fills into.
    """
    useful = (result.l1d.prefetches_useful + result.l2.prefetches_useful
              + result.llc.prefetches_useful)
    useless = (result.l1d.prefetches_useless + result.l2.prefetches_useless
               + result.llc.prefetches_useless)
    resolved = useful + useless
    return useful / resolved if resolved else 0.0


def prefetch_coverage(result: SimResult, baseline: SimResult) -> float:
    """Fraction of the baseline's train-level misses removed (coverage)."""
    base = train_level_mpki(baseline)
    if base <= 0:
        return 0.0
    return max(0.0, 1.0 - train_level_mpki(result) / base)


def traffic(result: SimResult, level: str = "l1d") -> int:
    """Total accesses at one level (memory-hierarchy traffic)."""
    stats: CacheStats = getattr(result, level)
    return stats.total_accesses()


def mshr_full_fraction(result: SimResult, level: str = "l1d") -> float:
    """Fraction of cycles lost to a full MSHR at one level (Section III-A
    proxy: cumulative full-wait cycles over run cycles)."""
    stats: CacheStats = getattr(result, level)
    if result.cycles <= 0:
        return 0.0
    return stats.mshr_full_wait_cycles / result.cycles


def suf_accuracy(result: SimResult) -> float:
    """Fraction of SUF filtering decisions that were correct."""
    if result.gm is None:
        return 1.0
    return result.gm.suf_accuracy()


# ----------------------------------------------------------------------
# interval time-series (repro.obs.sampler records)
# ----------------------------------------------------------------------

def timeseries_column(result: SimResult, field: str) -> List[float]:
    """One metric's per-interval values from a sampled run."""
    if not result.timeseries:
        return []
    return [record[field] for record in result.timeseries]


def timeseries_summary(result: SimResult, field: str) -> Dict[str, float]:
    """Min/mean/max of one sampled metric over the run's intervals.

    The mean is instruction-weighted, so intervals of unequal length
    (the final partial interval) do not skew it.
    """
    if not result.timeseries:
        return {"min": 0.0, "mean": 0.0, "max": 0.0, "intervals": 0}
    values = [record[field] for record in result.timeseries]
    weights = [record["instructions"] for record in result.timeseries]
    total = sum(weights)
    mean = sum(v * w for v, w in zip(values, weights)) / total \
        if total else 0.0
    return {"min": min(values), "mean": mean, "max": max(values),
            "intervals": len(values)}
