"""repro -- reproduction of "Secure Prefetching for Secure Cache Systems".

Nath, Navarro-Torres, Ros, Panda (MICRO 2024).

Public API tour:

* :mod:`repro.sim` -- the simulation substrate: Table II core model, cache
  hierarchy with MSHR/port contention, DRAM, and the GhostMinion secure
  cache system.  :class:`repro.sim.System` runs one configuration over one
  trace; ``repro.sim.multicore`` runs 4-core mixes.
* :mod:`repro.prefetchers` -- IP-stride, IPCP, Bingo, SPP+PPF, and Berti.
* :mod:`repro.core` -- the paper's contributions: the Secure Update Filter
  (SUF), Timely Secure Berti (TSB) with its X-LQ, the timely-secure (TS)
  wrappers for non-self-timing prefetchers, and the Fig. 6 miss taxonomy.
* :mod:`repro.workloads` -- synthetic SPEC CPU2017-like and GAP-like trace
  generators and multi-core mix construction.
* :mod:`repro.security` -- Spectre-style prefetch covert-channel harness.
* :mod:`repro.energy` -- dynamic-energy model of the memory hierarchy.
* :mod:`repro.analysis` -- metrics (speedup, APKI, MPKI, accuracy, ...).
* :mod:`repro.experiments` -- one driver per paper table and figure.

Quickstart::

    from repro import System, make_prefetcher, spec_trace
    from repro.prefetchers import MODE_ON_COMMIT

    trace = spec_trace("605.mcf-1554B", n_loads=20000)
    system = System(secure=True, suf=True,
                    prefetcher=make_prefetcher("berti"),
                    train_mode=MODE_ON_COMMIT)
    result = system.run(trace)
    print(result.ipc, result.mpki(result.l1d))
"""

from .core import (HitLevelQueue, MissClassifier, SUFDecision,
                   TimelyPrefetcher, TSBPrefetcher, XLQ, make_timely,
                   suf_decide)
from .prefetchers import (MODE_ON_ACCESS, MODE_ON_COMMIT,
                          PAPER_PREFETCHERS, Prefetcher, make_prefetcher)
from .sim import (MemoryHierarchy, SimResult, System, SystemParams,
                  baseline)
from .workloads import (Trace, gap_traces, spec_trace, spec_traces,
                        workload_pool)

__version__ = "1.0.0"

__all__ = [
    "HitLevelQueue", "MissClassifier", "SUFDecision", "TimelyPrefetcher",
    "TSBPrefetcher", "XLQ", "make_timely", "suf_decide",
    "MODE_ON_ACCESS", "MODE_ON_COMMIT", "PAPER_PREFETCHERS", "Prefetcher",
    "make_prefetcher",
    "MemoryHierarchy", "SimResult", "System", "SystemParams", "baseline",
    "Trace", "gap_traces", "spec_trace", "spec_traces", "workload_pool",
    "__version__",
]
