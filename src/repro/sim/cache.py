"""Set-associative cache level with MSHRs, port contention, and a PQ.

This is the workhorse substrate of the reproduction.  Each
:class:`CacheLevel` models:

* a set-associative array with LRU replacement;
* a finite pool of MSHRs -- misses wait for a free MSHR, and the wait time is
  the mechanism behind the MSHR-pressure results of Section III-A;
* finite tag/port bandwidth (``ports`` accesses per cycle);
* a prefetch queue (PQ) bounding in-flight prefetches, with drops when full;
* in-flight fills: a block inserted with a future ``fill_time`` services
  later requests only once the data has actually arrived (requests arriving
  earlier merge, which is how classic *late prefetches* are detected).

The model is functional rather than event-driven: ``access`` is called with
the cycle at which the request arrives and returns the cycle at which data is
available.  The simulator guarantees requests are generated in (near)
non-decreasing time order, so next-free bookkeeping for ports, MSHRs, and the
PQ models contention faithfully.

Where the secure pipeline touches this module: a speculative load under
GhostMinion walks the hierarchy with ``update=False, fill=False`` (the
*invisible* walk -- observe latency, change nothing), and its commit later
arrives as ``commit_write`` / a ``REQ_COMMIT`` access, the redundant
traffic Section III-A measures and the SUF (Section IV) filters.  The
``LEVEL_*`` constants below are the SUF's 2-bit hit-level encoding; the
latency each level returns also feeds TSB's X-LQ (Section V) so
commit-time training sees access-time timing.

Hot-path conventions (docs/PERFORMANCE.md): the recursive descent passes
arguments positionally (keyword passing costs ~3x in CPython), request
types are compared with ``is`` against the interned ``REQ_*`` constants,
and :class:`Line` is slotted.  None of this changes behaviour -- the
golden-stats tests pin bit-identical counters.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, List, Optional, Tuple

from .params import CacheParams
from .stats import (CacheStats, REQ_COMMIT, REQ_LOAD, REQ_PREFETCH,
                    REQ_STORE, REQ_WRITEBACK)

#: Hierarchy levels used for SUF hit-level encoding (Section IV).
LEVEL_L1D = 0
LEVEL_L2 = 1
LEVEL_LLC = 2
LEVEL_DRAM = 3

LEVEL_NAMES = ("L1D", "L2", "LLC", "DRAM")


class Line:
    """One cache line's metadata."""

    __slots__ = ("last_touch", "fill_time", "prefetched", "was_demand_hit",
                 "dirty", "gm_propagate", "wbb", "latency", "rrpv")

    def __init__(self, last_touch: int, fill_time: int,
                 prefetched: bool = False, dirty: bool = False,
                 gm_propagate: bool = False, wbb: bool = False,
                 latency: int = 0) -> None:
        self.last_touch = last_touch
        self.fill_time = fill_time
        self.prefetched = prefetched
        #: Set once a demand access hits this line (prefetch usefulness).
        self.was_demand_hit = False
        self.dirty = dirty
        #: Fetch latency of the fill that installed this line (Berti keeps
        #: this alongside prefetched L1D lines; Section V-C).
        self.latency = latency
        #: SRRIP re-reference prediction value (unused under LRU).
        self.rrpv = 2
        #: GhostMinion: this line carries committed data that must be written
        #: back (even when clean) to the next level upon eviction, so that
        #: the non-speculative hierarchy eventually receives the data
        #: (Fig. 2, flow 2a).  SUF clears this bit when the next level
        #: already holds the line (Section IV).
        self.gm_propagate = gm_propagate
        #: The ``gm_propagate`` value for the line installed at the *next*
        #: level by our writeback (the "L2 writeback bit" stored alongside
        #: L1D lines in Fig. 7).
        self.wbb = wbb


# An outstanding miss, for merging concurrent requests.  A plain tuple
# ``(fill_time, is_prefetch, issue_time)``: the entries are created once
# per true miss on the hottest path in the simulator, and a tuple pack
# beats a slotted-class constructor call there.
_MSHREntry = Tuple[int, bool, int]


class _PortBucket:
    """Per-cycle port bandwidth accounting.

    Unlike a next-free-slot pool, a bucket lets events be charged at their
    *own* cycle even when the simulator processes them out of time order
    (e.g. a writeback charged at a future fill time must not block a demand
    arriving at an earlier cycle).
    """

    __slots__ = ("ports", "counts", "_acquires")

    def __init__(self, ports: int) -> None:
        self.ports = ports
        self.counts: Dict[int, int] = {}
        self._acquires = 0

    def acquire(self, time: int) -> int:
        """Charge one access at or after ``time``; return its start cycle."""
        counts = self.counts
        count = counts.get(time, 0)
        if count >= self.ports:
            # Slow path: walk forward to the first cycle with a free port.
            ports = self.ports
            get = counts.get
            time += 1
            count = get(time, 0)
            while count >= ports:
                time += 1
                count = get(time, 0)
        counts[time] = count + 1
        self._acquires += 1
        if self._acquires >= 8192 and len(counts) > 65536:
            self._acquires = 0
            horizon = time - 100000
            for key in [k for k in counts if k < horizon]:
                del counts[key]
        return time


class _SlotPool:
    """A pool of N resources tracked by next-free times, kept *sorted*.

    Used for MSHRs and PQ entries.  Slots are interchangeable, so the
    pool is really a multiset of next-free times: allocation removes the
    minimum (``times[0]``) and inserts the new release time with
    ``insort``.  Keeping the list ascending turns the three O(N) scans
    the old flat-list version paid per allocation (``min`` + ``index`` +
    busy-count) into one O(1) head read plus one ``bisect``; the shared
    multi-core LLC, whose pools are four times the single-core size,
    is the main beneficiary.
    """

    __slots__ = ("times",)

    def __init__(self, size: int) -> None:
        self.times: List[int] = [0] * size

    def occupancy(self, time: int) -> int:
        """Number of slots busy at ``time`` (next-free strictly later)."""
        return len(self.times) - bisect_right(self.times, time)

    def full(self, time: int) -> bool:
        return self.times[0] > time


class CacheLevel:
    """One level of the cache hierarchy."""

    def __init__(self, params: CacheParams, level: int,
                 next_level: "MemoryBackend") -> None:
        self.params = params
        self.level = level
        self.name = LEVEL_NAMES[level]
        self.next = next_level
        self.stats = CacheStats()
        #: Optional :class:`repro.obs.events.EventTrace`; ``None`` keeps
        #: every emission site down to a single attribute check.
        self.events = None

        if params.replacement not in ("lru", "srrip", "random"):
            raise ValueError(
                f"unknown replacement policy {params.replacement!r}")
        self._policy = params.replacement
        self._victim_seed = 0x9E3779B9
        self._set_mask = params.sets - 1
        self.sets: List[Dict[int, Line]] = [{} for _ in range(params.sets)]
        self._ports = _PortBucket(params.ports)
        self._mshrs = _SlotPool(params.mshrs)
        self._pq = _SlotPool(params.pq_entries)
        self._outstanding: Dict[int, _MSHREntry] = {}
        # Hot-path hoists: immutable params read on every access, and the
        # bound port-acquire method (skips one attribute lookup + frame
        # per charge).  ``access`` is the hottest function in the whole
        # simulator; see docs/PERFORMANCE.md.
        self._latency = params.latency
        self._ways = params.ways
        self._port_acquire = self._ports.acquire
        # Port fast-path hoists (see ``access``): with a free port at the
        # request cycle the charge is one dict store and the start cycle
        # is the request cycle itself; only saturated cycles take the
        # walk-forward method call.
        self._port_counts = self._ports.counts
        self._port_n = params.ports
        # Identity-stable aliases of the pools' next-free-time lists (the
        # pools mutate them in place, never rebind).
        self._mshr_times = self._mshrs.times
        self._pq_times = self._pq.times
        # Identity-stable aliases of the per-request-type counter dicts:
        # ``stats`` is never rebound and ``StatsStruct.reset`` zeroes the
        # dicts in place, so one attribute hop per bump is saved on the
        # three hottest counters.
        self._accesses = self.stats.accesses
        self._hits = self.stats.hits
        self._misses = self.stats.misses
        #: Flattened descent rooted at this level (``make_flat_descent``),
        #: installed by the hierarchy when the chain below is plain
        #: CacheLevels terminating in a MemoryBackend.  ``None`` means
        #: callers use the recursive ``access``.
        self._descend = None

    # ------------------------------------------------------------------
    # basic array operations
    # ------------------------------------------------------------------

    def _set_of(self, block: int) -> Dict[int, Line]:
        return self.sets[block & self._set_mask]

    def lookup(self, block: int) -> Optional[Line]:
        """Return the line for ``block`` without touching any state."""
        return self._set_of(block).get(block)

    def contains(self, block: int, time: Optional[int] = None) -> bool:
        """True when ``block`` is present (and filled, if ``time`` given)."""
        line = self.lookup(block)
        if line is None:
            return False
        if time is not None and line.fill_time > time:
            return False
        return True

    def state_signature(self) -> Tuple:
        """A hashable snapshot of tags + replacement state + dirty bits.

        Used by security tests to assert that speculative execution leaves
        non-speculative cache state untouched (invisible speculation).
        """
        return tuple(
            tuple(sorted((blk, ln.last_touch, ln.dirty)
                         for blk, ln in set_.items()))
            for set_ in self.sets)

    # ------------------------------------------------------------------
    # main access path
    # ------------------------------------------------------------------

    def access(self, block: int, time: int, rtype: str,
               update: bool = True, fill: bool = True,
               count_useful: bool = True) -> Tuple[int, int]:
        """Service a request for ``block`` arriving at ``time``.

        Returns ``(completion_time, served_level)`` where ``served_level`` is
        the hierarchy level that provided the data (``LEVEL_L1D`` ..
        ``LEVEL_DRAM``).

        ``update=False`` models GhostMinion's speculative probe: hits do not
        touch replacement state.  ``fill=False`` means a miss does not install
        the line at this level (the data bypasses to the GM); the miss still
        consumes an MSHR and port bandwidth, as GhostMinion's MSHRs do.
        (The flags are positional-friendly: keyword passing costs real time
        on the recursive descent, the hottest call chain in the simulator.)
        """
        self._accesses[rtype] += 1
        # _PortBucket.acquire's free-port arm, inlined (the trim counter
        # is maintained so the occasional slow-path call still prunes).
        counts = self._port_counts
        pc = counts.get(time, 0)
        if pc < self._port_n:
            counts[time] = pc + 1
            self._ports._acquires += 1
            start = time
        else:
            start = self._port_acquire(time)
        # ``demand`` (is this a load/store?) is only consulted on the
        # rarer paths, so it is derived lazily there; the REQ_* constants
        # are module-level interned strings, making ``is`` tests exact.

        line = self.sets[block & self._set_mask].get(block)
        if line is not None:
            ready = start + self._latency
            if line.fill_time <= ready:
                # Plain hit.
                self._hits[rtype] += 1
                if update:
                    line.last_touch = time
                    line.rrpv = 0
                    if rtype is REQ_STORE:
                        line.dirty = True
                if line.prefetched and count_useful \
                        and not line.was_demand_hit \
                        and (rtype is REQ_LOAD or rtype is REQ_STORE):
                    line.was_demand_hit = True
                    self.stats.prefetches_useful += 1
                    if self.events is not None:
                        self.events.emit("pf_use", time, block, self.name)
                # fill_time <= ready was just checked: ready is the max.
                return ready, self.level
            # Line is being filled: merge with the in-flight fill.
            return self._merge(block, line.fill_time, line.prefetched,
                               start, rtype,
                               rtype is REQ_LOAD or rtype is REQ_STORE,
                               count_useful, line)

        entry = self._outstanding.get(block)
        if entry is not None:
            entry_fill_time = entry[0]
            if entry_fill_time <= start:
                # Stale entry from a bypassing (fill=False) miss; the data is
                # no longer in flight here.
                del self._outstanding[block]
            else:
                return self._merge(block, entry_fill_time,
                                   entry[1], start, rtype,
                                   rtype is REQ_LOAD or rtype is REQ_STORE,
                                   count_useful, None)

        # True miss: allocate an MSHR and fetch from the next level.  The
        # update/fill flags propagate down so a GhostMinion speculative walk
        # leaves no state anywhere in the non-speculative hierarchy.
        self._misses[rtype] += 1
        alloc = self._mshr_acquire(start)
        send = alloc + self._latency
        completion, served = self.next.access(
            block, send, rtype, update, fill, count_useful)
        self._mshr_fill(block, completion, rtype is REQ_PREFETCH, start)

        if fill:
            self.insert(block, completion,
                        rtype is REQ_PREFETCH,
                        rtype is REQ_STORE,
                        latency=completion - time)
            # The line itself now carries the in-flight state.
            self._outstanding.pop(block, None)

        if rtype is REQ_LOAD:
            stats = self.stats
            stats.load_miss_latency_sum += completion - time
            stats.load_miss_latency_count += 1
        return completion, served

    def probe(self, block: int, time: int, rtype: str) -> bool:
        """Tag probe without recursion, fills, or replacement update.

        Models the L1D lookup performed in parallel with a GM access: it
        consumes a port and is counted as an access, but a probe miss does
        not start a fetch and is *not* counted as a demand miss (the GM
        provided the data).
        """
        self._accesses[rtype] += 1
        self._port_acquire(time)
        line = self.sets[block & self._set_mask].get(block)
        hit = line is not None and line.fill_time <= time
        if hit:
            self._hits[rtype] += 1
        return hit

    def _merge(self, block: int, fill_time: int, was_prefetch: bool,
               start: int, rtype: str, demand: bool, count_useful: bool,
               line: Optional[Line]) -> Tuple[int, int]:
        """A request merges with an in-flight fill for the same block."""
        stats = self.stats
        self._misses[rtype] += 1
        stats.mshr_merges += 1
        if demand and was_prefetch:
            stats.demand_merged_into_prefetch += 1
            if count_useful:
                counted = False
                if line is not None and not line.was_demand_hit:
                    line.was_demand_hit = True
                    stats.prefetches_useful += 1
                    counted = True
                elif line is None:
                    stats.prefetches_useful += 1
                    counted = True
                if counted and self.events is not None:
                    self.events.emit("pf_use", start, block, self.name)
        completion = max(fill_time, start + self._latency)
        if rtype is REQ_LOAD:
            stats.load_miss_latency_sum += completion - start
            stats.load_miss_latency_count += 1
        return completion, self.level

    # ------------------------------------------------------------------
    # fills, insertions, writebacks
    # ------------------------------------------------------------------

    def insert(self, block: int, time: int, prefetched: bool = False,
               dirty: bool = False, gm_propagate: bool = False,
               wbb: bool = False, latency: int = 0) -> None:
        """Install ``block`` at this level, evicting the LRU victim."""
        set_ = self.sets[block & self._set_mask]
        existing = set_.get(block)
        if existing is not None:
            existing.last_touch = time
            existing.dirty = existing.dirty or dirty
            existing.gm_propagate = existing.gm_propagate or gm_propagate
            existing.wbb = existing.wbb or wbb
            return
        if len(set_) >= self._ways:
            # Recycle the evicted Line object in place of a fresh
            # allocation: nine slot stores instead of a constructor call
            # per conflict fill, on the hottest insert path.
            line = self._evict(set_, time)
            line.last_touch = time
            line.fill_time = time
            line.prefetched = prefetched
            line.was_demand_hit = False
            line.dirty = dirty
            line.latency = latency
            line.rrpv = 2
            line.gm_propagate = gm_propagate
            line.wbb = wbb
            set_[block] = line
        else:
            set_[block] = Line(time, time, prefetched, dirty, gm_propagate,
                               wbb, latency)
        if prefetched:
            self.stats.prefetch_fills += 1
        if self.events is not None:
            self.events.emit("pf_fill" if prefetched else "fill", time,
                             block, self.name)

    def _select_victim(self, set_: Dict[int, Line]) -> int:
        if self._policy == "lru":
            # Explicit scan instead of min(key=lambda ...): no closure
            # allocation per eviction.  Strict < keeps min()'s tie-break
            # (first key in insertion order); last_touch is NOT monotone
            # here -- a demand hit can move it backwards relative to a
            # fill-time initialisation -- so an O(1) recency list would
            # pick different victims.  The TLB, whose ticks are strictly
            # monotone, gets the O(1) treatment instead (see tlb.py).
            items = iter(set_.items())
            victim, line = next(items)
            victim_touch = line.last_touch
            for block, line in items:
                touch = line.last_touch
                if touch < victim_touch:
                    victim_touch = touch
                    victim = block
            return victim
        if self._policy == "srrip":
            # Find a distant-re-reference line, aging the set as needed.
            while True:
                for block, line in set_.items():
                    if line.rrpv >= 3:
                        return block
                for line in set_.values():
                    line.rrpv += 1
        # Deterministic pseudo-random (xorshift) pick.
        seed = self._victim_seed
        seed ^= (seed << 13) & 0xFFFFFFFF
        seed ^= seed >> 17
        seed ^= (seed << 5) & 0xFFFFFFFF
        self._victim_seed = seed
        keys = list(set_)
        return keys[seed % len(keys)]

    def _evict(self, set_: Dict[int, Line], time: int) -> Line:
        victim_block = self._select_victim(set_)
        victim = set_.pop(victim_block)
        self.stats.evictions += 1
        if self.events is not None:
            self.events.emit("evict", time, victim_block, self.name)
        if victim.prefetched and not victim.was_demand_hit:
            self.stats.prefetches_useless += 1
        if victim.dirty or victim.gm_propagate:
            self.stats.writebacks_out += 1
            self.next.receive_writeback(victim_block, time, victim.dirty,
                                        victim.wbb)
        return victim

    def receive_writeback(self, block: int, time: int, dirty: bool = False,
                          gm_propagate: bool = False,
                          wbb: bool = False) -> None:
        """Accept an eviction from the level above (no read recursion)."""
        self._accesses[REQ_WRITEBACK] += 1
        self._port_acquire(time)
        line = self.sets[block & self._set_mask].get(block)
        if line is not None:
            self._hits[REQ_WRITEBACK] += 1
            line.dirty = line.dirty or dirty
            line.last_touch = time
            line.gm_propagate = line.gm_propagate or gm_propagate
            line.wbb = line.wbb or wbb
            return
        self._misses[REQ_WRITEBACK] += 1
        self.insert(block, time, False, dirty, gm_propagate, wbb)

    def commit_write(self, block: int, time: int, gm_propagate: bool = True,
                     wbb: bool = True) -> None:
        """Accept a GhostMinion on-commit write (GM -> this level).

        Counted as a *commit request* in the traffic breakdown (Fig. 3).
        """
        self._accesses[REQ_COMMIT] += 1
        self._port_acquire(time)
        line = self.sets[block & self._set_mask].get(block)
        if line is not None:
            self._hits[REQ_COMMIT] += 1
            line.last_touch = time
            line.gm_propagate = line.gm_propagate or gm_propagate
            line.wbb = line.wbb or wbb
            return
        self.insert(block, time, False, False, gm_propagate, wbb)

    # ------------------------------------------------------------------
    # prefetch queue
    # ------------------------------------------------------------------

    def issue_prefetch(self, block: int, time: int, *,
                       fill: bool = True) -> bool:
        """Issue one prefetch request at this level.

        Returns ``True`` when the request entered the memory system (counted
        as issued), ``False`` when it was dropped (already present, in
        flight, or PQ full).
        """
        if block in self.sets[block & self._set_mask] \
                or block in self._outstanding:
            return self._drop_prefetch(block, time)
        # Sorted pools: both availability checks are head reads.
        pq_times = self._pq_times
        if pq_times[0] > time:
            return self._drop_prefetch(block, time)
        # Hardware drops prefetches rather than letting them queue for an
        # MSHR ahead of demand misses (the functional MSHR model would
        # otherwise let a prefetch reserve a future slot).
        if self._mshr_times[0] > time:
            return self._drop_prefetch(block, time)
        self.stats.prefetches_issued += 1
        if self.events is not None:
            self.events.emit("pf_issue", time, block, self.name)
        descend = self._descend
        if descend is None:
            descend = self.access
        completion, _ = descend(block, time, REQ_PREFETCH, True, fill)
        # The access above never touches the PQ, so the head is still the
        # slot this prefetch claimed.
        del pq_times[0]
        insort(pq_times, completion)
        return True

    def _drop_prefetch(self, block: int, time: int) -> bool:
        self.stats.prefetches_dropped += 1
        if self.events is not None:
            self.events.emit("pf_drop", time, block, self.name)
        return False

    # ------------------------------------------------------------------
    # resource pools
    # ------------------------------------------------------------------

    def mshr_occupancy(self, time: int) -> int:
        """MSHRs busy at ``time`` (prefetch orchestration reads this)."""
        return self._mshrs.occupancy(time)

    def _mshr_acquire(self, time: int) -> int:
        # The pool list is sorted (see _SlotPool): the earliest-free slot
        # is the head, and the busy count is one bisect away -- no O(N)
        # scans on the allocation path.
        stats = self.stats
        times = self._mshr_times
        free_at = times[0]
        stats.mshr_occupancy_sum += len(times) - bisect_right(times, time)
        stats.mshr_occupancy_samples += 1
        if free_at > time:
            stats.mshr_full_events += 1
            stats.mshr_full_wait_cycles += free_at - time
            start = free_at
        else:
            start = time
        # The claimed slot simply stays popped until ``_mshr_fill`` inserts
        # the true fill time: the pair always runs back-to-back at a given
        # level (the recursion between them only descends), so nothing can
        # observe the one-short pool and the placeholder insort + search
        # the old scheme paid per miss is gone.
        del times[0]
        return start

    def _mshr_fill(self, block: int, fill_time: int, is_prefetch: bool,
                   issue_time: int) -> None:
        insort(self._mshr_times, fill_time)
        self._outstanding[block] = (fill_time, is_prefetch, issue_time)

    # ------------------------------------------------------------------

    def reset_stats(self) -> None:
        self.stats.reset()


#: 64-bit mask for the scramble finalizer below.
_MASK64 = (1 << 64) - 1


class ScrambledBackend:
    """Keyed block-address permutation in front of a cache level.

    Models a randomized-index cache in the Random-and-Safe / CEASER
    family: the level behind this adapter sees a keyed bijection of the
    physical block address, so an attacker cannot construct an eviction
    set for a chosen victim set without knowing the key.  The mapping is
    a splitmix64-style finalizer over ``block ^ seed`` -- bijective on
    64-bit values, so distinct blocks never alias and the level's
    hit/miss behaviour is exact, just relocated.

    The adapter fronts only the level it wraps (here: the LLC); upper
    levels keep physical indexing, matching the deployments described in
    the papers (randomization at the shared outer level where conflict
    channels are mounted).  It exposes the ``access`` /
    ``receive_writeback`` / ``issue_prefetch`` / ``contains`` duck type
    of :class:`CacheLevel`, translating the block argument and passing
    everything else through positionally (hot-path convention).
    """

    __slots__ = ("level", "seed")

    def __init__(self, level: "CacheLevel", seed: int) -> None:
        if not seed:
            raise ValueError("scramble seed must be non-zero")
        self.level = level
        self.seed = seed & _MASK64

    def scramble(self, block: int) -> int:
        """The keyed bijection: physical block -> scrambled block."""
        z = (block ^ self.seed) & _MASK64
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def access(self, block: int, time: int, rtype: str,
               update: bool = True, fill: bool = True,
               count_useful: bool = True) -> Tuple[int, int]:
        return self.level.access(self.scramble(block), time, rtype,
                                 update, fill, count_useful)

    def receive_writeback(self, block: int, time: int, dirty: bool = False,
                          gm_propagate: bool = False,
                          wbb: bool = False) -> None:
        self.level.receive_writeback(self.scramble(block), time, dirty,
                                     gm_propagate, wbb)

    def issue_prefetch(self, block: int, time: int, *,
                       fill: bool = True) -> bool:
        return self.level.issue_prefetch(self.scramble(block), time,
                                         fill=fill)

    def contains(self, block: int, time: Optional[int] = None) -> bool:
        return self.level.contains(self.scramble(block), time)


class MemoryBackend:
    """Terminal backend adapting :class:`~repro.sim.dram.DRAMChannel`.

    Exposes the same ``access``/``receive_writeback`` duck type as
    :class:`CacheLevel` so the hierarchy recursion terminates cleanly.
    """

    def __init__(self, dram) -> None:
        self.dram = dram

    def access(self, block: int, time: int, rtype: str,
               update: bool = True, fill: bool = True,
               count_useful: bool = True) -> Tuple[int, int]:
        del update, fill, count_useful
        return (self.dram.access(block, time,
                                 rtype is REQ_LOAD or rtype is REQ_STORE),
                LEVEL_DRAM)

    def receive_writeback(self, block: int, time: int, dirty: bool = False,
                          gm_propagate: bool = False,
                          wbb: bool = False) -> None:
        del gm_propagate, wbb
        if dirty:
            self.dram.access(block, time, False)
