"""Single-core system: core + hierarchy + prefetcher + contribution glue.

:class:`System` wires the Table II core model, a (secure or non-secure)
memory hierarchy, one data prefetcher in a chosen training mode, and the
paper's mechanisms (SUF hit-level queue, TSB's X-LQ, the Fig. 6 miss
classifier).  :meth:`System.run` replays a trace and returns a
:class:`SimResult` with every statistic the paper's figures need.

Event ordering: the loop processes instructions in program order.  Demand
accesses happen at dispatch time and commit actions are queued by retire
time; both streams are monotone, so draining the commit queue up to each new
dispatch time yields a globally time-ordered event sequence -- cache, GM,
MSHR, and DRAM contention are therefore seen in the right order by both the
speculative and the commit paths.

On-access vs on-commit.  Every load produces up to two events, and the
training mode decides which one the prefetcher sees:

* **access time** (dispatch): the load probes the hierarchy.  Non-secure
  systems update the caches and -- in ``MODE_ON_ACCESS`` -- train the
  prefetcher here, including on wrong-path loads (the transient-training
  channel of Section III-B).  Secure systems instead do GhostMinion's
  *invisible* walk: probe L1D without updating recency, fill only the GM.
* **commit time** (retire): only committed-path loads get here.  The
  secure hierarchy replays the load's effect onto L1D (commit write, or
  re-fetch if the GM line was lost), and ``MODE_ON_COMMIT`` prefetchers
  train on this stream only -- they never observe a transient load.

The paper's two mechanisms hook into the commit path:

* **SUF** (Section IV): at access time the serving level (GM/L1D/L2+) is
  recorded in 2 bits in the LQ (:class:`~repro.core.suf.HitLevelQueue`);
  at commit, :func:`~repro.core.suf.suf_decide` uses it to drop or
  truncate the redundant commit-time hierarchy update before it spends
  L1D ports/MSHRs.
* **TSB** (Section V): at access time the true issue cycle and fetch
  latency are stored in the X-LQ (:class:`~repro.core.xlq.XLQ`); at
  commit the :class:`TrainingEvent` is reconstructed with those values,
  so Berti's delta timing reflects *access-time* reality even though
  training happens at commit.

Performance note: :meth:`System._stepper` and :meth:`System._drain_commits`
inline the hierarchy's per-load fast paths (speculative load, commit
decision, X-LQ read, dTLB hit) with all per-record state in locals; the
corresponding methods on :class:`~repro.sim.hierarchy.Hierarchy` et al.
remain the readable reference implementations.  docs/PERFORMANCE.md has
the inventory; tests/sim/test_golden_stats.py pins bit-identical stats.
"""

from __future__ import annotations

import gc

from bisect import bisect_right, insort
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..core.classification import MissClassifier
from ..core.suf import HitLevelQueue, suf_decide
from ..core.xlq import LAT_MASK, TS_MASK, XLQ
from ..obs import EventTrace, IntervalSampler, MetricRegistry, ObsConfig
from ..prefetchers.base import (MODE_ON_ACCESS, MODE_ON_COMMIT, Prefetcher,
                                TrainingEvent)
from ..workloads.trace import (BLOCK_SHIFT, FLAG_BRANCH, FLAG_LOAD,
                               FLAG_MISPREDICT, FLAG_STORE, FLAG_WRONG_PATH,
                               Trace)
from .batch import batch_default, plan_for
from .cpu import CoreModel
from .delay import DelayOnMissPolicy
from .hierarchy import MemoryHierarchy
from .params import SystemParams, baseline
from .stats import (CacheStats, CoreStats, DRAMStats, GhostMinionStats,
                    REQ_COMMIT, REQ_LOAD, REQ_PREFETCH, REQ_STORE)
from .tlb import TLBHierarchy, TLBStats

#: Sentinel "sample threshold" used when interval sampling is disabled:
#: committed-instruction counts never reach it, so the stepper's only
#: per-record observability cost is one integer comparison.
_NEVER = float("inf")

#: Shared "no prefetcher" commit metadata -- the consumer (on-commit
#: training feedback) only reads it when a prefetcher exists, so one
#: constant tuple serves every load instead of a fresh allocation each.
_NO_PF_META = (False, False, False, False, False, False)


@dataclass
class SimResult:
    """Everything measured by one simulation run."""

    label: str
    trace_name: str
    committed: int
    cycles: int
    ipc: float
    core: CoreStats
    l1d: CacheStats
    l2: CacheStats
    llc: CacheStats
    gm: Optional[GhostMinionStats]
    dram: DRAMStats
    tlb: Optional[TLBStats]
    classification: Optional[Dict[str, int]]
    prefetcher_name: str
    train_level: int
    train_mode: str
    secure: bool
    suf: bool
    extras: Dict[str, float] = field(default_factory=dict)
    #: Interval time-series records (``obs.sample_interval > 0`` only).
    timeseries: Optional[List[Dict[str, float]]] = None

    def kilo_instructions(self) -> float:
        return self.committed / 1000.0

    def apki(self, level_stats: CacheStats) -> float:
        ki = self.kilo_instructions()
        return level_stats.total_accesses() / ki if ki else 0.0

    def mpki(self, level_stats: CacheStats) -> float:
        ki = self.kilo_instructions()
        return level_stats.demand_misses() / ki if ki else 0.0


class System:
    """One core and its memory system, in one of the paper's configurations.

    Parameters
    ----------
    params:
        Hardware configuration (defaults to Table II).
    secure:
        Use the GhostMinion secure cache system.
    suf:
        Enable the Secure Update Filter (requires ``secure``).
    prefetcher:
        A :class:`Prefetcher` instance, or ``None``.  TSB instances (with a
        ``requires_xlq`` attribute) automatically get X-LQ-sourced training
        events.
    train_mode:
        ``"on-access"`` or ``"on-commit"``.
    shadow:
        Optional on-access shadow prefetcher enabling the Fig. 6 miss
        taxonomy.  Pass a *fresh* instance of the same prefetcher type.
    classify:
        Collect the miss taxonomy even without a shadow (late/uncovered
        only).
    """

    def __init__(self, params: Optional[SystemParams] = None, *,
                 secure: bool = False, suf: bool = False,
                 delay_mitigation: bool = False,
                 prefetcher: Optional[Prefetcher] = None,
                 train_mode: str = MODE_ON_ACCESS,
                 shadow: Optional[Prefetcher] = None,
                 classify: bool = False,
                 shared_llc=None, shared_dram=None,
                 llc_scramble: int = 0,
                 obs: Optional[ObsConfig] = None,
                 label: Optional[str] = None,
                 batch: Optional[bool] = None) -> None:
        if params is None:
            params = baseline()
        if train_mode not in (MODE_ON_ACCESS, MODE_ON_COMMIT):
            raise ValueError(f"unknown train mode {train_mode!r}")
        if suf and not secure:
            raise ValueError("SUF requires the secure cache system")
        if delay_mitigation and secure:
            raise ValueError("pick one mitigation: GhostMinion (secure) "
                             "or delay-on-miss (delay_mitigation)")
        self.params = params
        self.secure = secure
        self.suf = suf
        self.delay_policy = DelayOnMissPolicy() if delay_mitigation \
            else None
        self.prefetcher = prefetcher
        self.train_mode = train_mode
        #: Non-zero key enables the randomized-index LLC front
        #: (:class:`~repro.sim.cache.ScrambledBackend`; the ``rand-llc``
        #: mitigation).  Zero keeps the conventional hierarchy
        #: bit-identical to every pinned configuration.
        self.llc_scramble = llc_scramble

        self.hierarchy = MemoryHierarchy(
            params, secure=secure,
            commit_filter=suf_decide if suf else None,
            shared_llc=shared_llc, shared_dram=shared_dram,
            llc_scramble=llc_scramble)
        self.core = CoreModel(params.core)
        self.core_stats = CoreStats()
        self.tlb = TLBHierarchy(params.tlb)

        #: SUF's LQ-side hit-level storage (step 1 of Fig. 7).
        self.hit_levels = HitLevelQueue(params.core.lq_entries,
                                        params.l1d.blocks) if suf else None
        #: TSB's X-LQ: instantiated when the prefetcher asks for it.
        self.use_xlq = bool(getattr(prefetcher, "requires_xlq", False))
        self.xlq: Optional[XLQ] = getattr(prefetcher, "xlq", None) \
            if self.use_xlq else None
        if self.use_xlq and self.xlq is None:
            self.xlq = XLQ(params.core.lq_entries)

        self.classifier = MissClassifier(
            shadow, commit_mode=(train_mode == MODE_ON_COMMIT)) \
            if (shadow is not None or classify) and prefetcher is not None \
            else None
        #: TS wrappers expose ``note_demand`` for lateness feedback.
        self._ts_feedback = hasattr(prefetcher, "note_demand")

        #: Observability: interval sampler and event trace, both ``None``
        #: when disabled so the hot loop pays a single attribute check.
        self.obs = obs if obs is not None else ObsConfig()
        self.sampler = IntervalSampler(self.obs.sample_interval) \
            if self.obs.sample_interval else None
        self.events = EventTrace(self.obs.trace_capacity) \
            if self.obs.trace_events else None
        if self.events is not None:
            self.hierarchy.attach_events(self.events)

        self.label = label if label is not None else self._default_label()

        #: Queued commit actions: (retire_time, is_load, payload).
        self._commit_q: Deque[Tuple] = deque()
        #: Load commits have work to do only in secure mode (GhostMinion
        #: on-commit write / re-fetch) or under on-commit training; in
        #: every other configuration the per-load queue entry would be
        #: dead weight, so it is never enqueued.  Store commits always
        #: enqueue (the L1D write happens at retire time), and their
        #: drain timing is unaffected: each entry is processed at the
        #: first dispatch past its own retire time either way.
        self._commit_loads = secure or (
            prefetcher is not None and train_mode == MODE_ON_COMMIT)
        self._pending_redirect = 0
        self._seq = 0
        self._warmup_cycle = 0
        #: Batch front-end selection: explicit argument wins, else the
        #: ``REPRO_BATCH`` environment variable, else NumPy availability
        #: (see :func:`repro.sim.batch.batch_default`).  Both front-ends
        #: produce bit-identical statistics; this only picks the faster
        #: interpreter for the machine at hand.
        self.batch = batch_default() if batch is None else bool(batch)
        #: Lazily built commit-drain closure (see :meth:`_make_drainer`).
        self._drainer = None
        self._issuer = None

    def _default_label(self) -> str:
        pf = self.prefetcher.name if self.prefetcher else "no-pref"
        if self.secure:
            system = "secure"
        elif self.delay_policy is not None:
            system = "delay"
        else:
            system = "non-secure"
        parts = [pf, self.train_mode, system]
        if self.suf:
            parts.append("suf")
        if self.llc_scramble:
            parts.append("rand-llc")
        return "/".join(parts)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, trace: Trace, warmup: float = 0.2) -> SimResult:
        """Replay ``trace``; measure everything after the warm-up fraction.

        ``warmup`` is the fraction of committed instructions used to warm
        caches and predictor tables before statistics are reset.
        """
        # The replay loop churns short-lived, cycle-free objects only;
        # pausing the cyclic collector keeps its periodic scans out of
        # the hot loop (refcounting still frees everything promptly).
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in self.stepper(trace, warmup, chunk=0):
                pass
        finally:
            if gc_was_enabled:
                gc.enable()
        return self.finalize(trace)

    def stepper(self, trace: Trace, warmup: float = 0.2,
                chunk: int = 32):
        """Incrementally replay ``trace``, yielding every ``chunk``
        committed-path instructions (``chunk=0`` never yields).

        The multi-core driver interleaves several systems' steppers by
        time; :meth:`finalize` must be called after exhaustion.

        Dispatches to the batch front-end (:meth:`_stepper_batch`) or the
        scalar reference loop (:meth:`_stepper_scalar`) according to
        ``self.batch``; both produce bit-identical statistics and the
        same yield cadence, pinned by tests/sim/test_batch.py.
        """
        if not 0.0 <= warmup < 1.0:
            raise ValueError(f"warmup must be in [0, 1), got {warmup!r}")
        if self.batch:
            return self._stepper_batch(trace, warmup, chunk)
        return self._stepper_scalar(trace, warmup, chunk)

    def _stepper_scalar(self, trace: Trace, warmup: float, chunk: int):
        """The scalar (one record at a time) simulate loop.

        The loop is deliberately *flat*: the per-record core model
        (dispatch / LQ / retire -- :class:`~repro.sim.cpu.CoreModel` is
        the readable reference implementation) and the per-load pipeline
        are inlined here with their state held in local variables.  The
        locals are written back to ``self.core`` at every yield, sample,
        and warm-up reset, so external readers (the multi-core driver's
        ``current_cycle`` ordering, the interval sampler's occupancy
        probes, :meth:`finalize`) always observe coherent state.  When
        sampling is off, ``sample_at`` is an unreachable sentinel, making
        the per-record observability cost one integer compare.
        """
        warmup_target = int(trace.committed_count * warmup)
        if warmup_target >= trace.committed_count:
            # Float-rounding guard: the warm-up reset must always leave at
            # least one measured instruction on a non-empty trace.
            warmup_target = max(trace.committed_count - 1, 0)
        warmed = warmup_target == 0
        committed = 0
        since_yield = 0

        core = self.core
        stats = self.core_stats
        # Core counters, localized like the cursors below; written back
        # with them at every sync point.
        n_instr = stats.committed_instructions
        n_loads = stats.committed_loads
        n_stores = stats.committed_stores
        n_wrong_loads = stats.wrong_path_loads
        n_mispredicts = stats.branch_mispredicts
        sampler = self.sampler
        commit_q = self._commit_q
        commit_append = commit_q.append
        drain_commits = self._drainer
        if drain_commits is None:
            drain_commits = self._drainer = self._make_drainer()
        delay_policy = self.delay_policy
        core_params = self.params.core
        issue_latency = core_params.load_issue_latency
        alu_latency = core_params.alu_latency
        penalty = core_params.mispredict_penalty
        sample_at = sampler.next_at if sampler is not None else _NEVER
        seq = self._seq
        pending_redirect = self._pending_redirect

        # Core-model state, localized (see the docstring).  The deques
        # are shared objects, so occupancy probes stay accurate; only the
        # scalar cursors need explicit write-back.
        rob = core._rob
        lq = core._lq
        rob_append = rob.append
        rob_popleft = rob.popleft
        lq_append = lq.append
        lq_popleft = lq.popleft
        rob_entries = core._rob_entries
        issue_width = core._issue_width
        retire_width_m1 = core._retire_width_m1
        lq_entries = core._lq_entries
        dispatch_cycle = core._dispatch_cycle
        dispatch_slot = core._dispatch_slot
        retire_cycle = core._retire_cycle
        retire_slot = core._retire_slot
        load_seq = core._load_seq
        final_retire = core.final_retire

        # Load-pipeline collaborators.
        hierarchy = self.hierarchy
        secure = hierarchy.secure
        l1d_access = hierarchy._l1d_access
        l1d = hierarchy.l1d
        if secure:
            gm = hierarchy.gm
            gm_lookup = gm.lookup
            gm_apply = gm.apply_until
            gm_fill = gm.fill
            gm_heap = hierarchy._gm_heap
            gm_stats = hierarchy.gm_stats
            gm_hit_latency = hierarchy._gm_hit_latency
            l1d_probe = l1d.probe
        tlb = self.tlb
        tlb_enabled = tlb._enabled
        tlb_stats = tlb.stats
        dtlb_sets = tlb._dtlb_sets
        dtlb_mask = tlb._dtlb_mask
        tlb_miss = tlb._miss
        prefetcher = self.prefetcher
        # Prefetch-outcome bookkeeping (late/useful detection via stats
        # deltas) only matters when something consumes it; without a
        # prefetcher the whole pre/post read pair is skipped and ``meta``
        # is a shared constant.
        track = prefetcher is not None
        if track:
            l1_stats = l1d.stats
            l2_stats = hierarchy.l2.stats
            train_l1 = prefetcher.train_level == 0
            train = prefetcher.train
        classifier = self.classifier
        on_access = self.train_mode == MODE_ON_ACCESS
        ts_feedback = self._ts_feedback
        hit_levels = self.hit_levels
        xlq = self.xlq
        commit_loads = self._commit_loads
        issue_requests = self._issue

        for ip, vaddr, flags in trace.records:
            seq += 1
            wrong = flags & FLAG_WRONG_PATH
            if pending_redirect and not wrong:
                # CoreModel.redirect, inlined.
                if pending_redirect > dispatch_cycle:
                    dispatch_cycle = pending_redirect
                    dispatch_slot = 0
                pending_redirect = 0
            # CoreModel.dispatch, inlined.
            if not wrong and len(rob) >= rob_entries:
                oldest = rob_popleft()
                if oldest > dispatch_cycle:
                    dispatch_cycle = oldest
                    dispatch_slot = 0
            t_disp = dispatch_cycle
            dispatch_slot += 1
            if dispatch_slot >= issue_width:
                dispatch_cycle += 1
                dispatch_slot = 0
            if commit_q and commit_q[0][0] <= t_disp:
                drain_commits(t_disp)

            if flags & FLAG_LOAD:
                block = vaddr >> BLOCK_SHIFT
                issue_time = t_disp + issue_latency
                # CoreModel.lq_allocate, inlined.
                if len(lq) >= lq_entries:
                    oldest = lq_popleft()
                    if oldest > issue_time:
                        issue_time = oldest
                # Address translation precedes the data-cache access; TLB
                # misses push the access later (tlb.translate_block with
                # its dTLB-hit fast path inlined: move-to-back keeps dict
                # insertion order == LRU recency order).
                if tlb_enabled:
                    page = block >> 6
                    tlb_stats.dtlb_accesses += 1
                    set_ = dtlb_sets[page & dtlb_mask]
                    if page in set_:
                        del set_[page]
                        set_[page] = None
                    else:
                        issue_time += tlb_miss(page)
                if delay_policy is not None:
                    l1d_hit = l1d.contains(block, issue_time)
                    if wrong and not l1d_hit:
                        # Delay-on-miss: a wrong-path miss never clears
                        # the branch horizon, so its request is never
                        # sent -- squashed (CoreModel.lq_complete inlined).
                        lq_append(issue_time + 1)
                        load_seq += 1
                        n_wrong_loads += 1
                        continue
                    issue_time = delay_policy.issue_time(issue_time,
                                                         l1d_hit)
                if track:
                    merged1_pre = l1_stats.demand_merged_into_prefetch
                    useful1_pre = l1_stats.prefetches_useful
                    merged2_pre = l2_stats.demand_merged_into_prefetch
                    useful2_pre = l2_stats.prefetches_useful

                if secure:
                    # hierarchy._speculative_load, inlined (the method
                    # remains the readable reference and the public API
                    # via demand_load); skips two call frames and the
                    # LoadResult allocation per load.
                    if gm_heap and gm_heap[0][0] <= issue_time:
                        gm_apply(issue_time)
                    gm_line = gm_lookup(block)
                    if gm_line is not None:
                        gm_stats.gm_hits += 1
                        l1d_probe(block, issue_time, REQ_LOAD)
                        completion = issue_time + gm_hit_latency
                        fill_time = gm_line.fill_time
                        if fill_time > completion:
                            completion = fill_time
                        hit_level = 0
                        fetch_latency = completion - issue_time
                        gm_hit = True
                    else:
                        gm_stats.gm_misses += 1
                        completion, hit_level = l1d_access(
                            block, issue_time, REQ_LOAD, False, False,
                            wrong == 0)
                        fetch_latency = completion - issue_time
                        gm_hit = False
                        if hit_level != 0:
                            gm_fill(block, completion, seq, fetch_latency,
                                    wrong != 0)
                else:
                    # Non-secure loads go straight to the L1D -- inlining
                    # demand_load skips the wrapper call and the
                    # LoadResult allocation on the hottest per-load path.
                    completion, hit_level = l1d_access(
                        block, issue_time, REQ_LOAD, True, True,
                        wrong == 0)
                    fetch_latency = completion - issue_time
                    gm_hit = False
                # CoreModel.lq_complete, inlined.
                lq_append(completion)
                slot = load_seq % lq_entries
                load_seq += 1
                miss_l1 = hit_level >= 1

                if hit_levels is not None and not wrong:
                    hit_levels.record(slot, hit_level)

                if track:
                    late_l1 = \
                        l1_stats.demand_merged_into_prefetch > merged1_pre
                    useful_l1 = l1_stats.prefetches_useful > useful1_pre
                    late_l2 = \
                        l2_stats.demand_merged_into_prefetch > merged2_pre
                    useful_l2 = l2_stats.prefetches_useful > useful2_pre
                    miss_l2 = hit_level >= 2

                    if xlq is not None and not wrong:
                        if miss_l1 and not gm_hit:
                            xlq.record_miss(slot, issue_time)
                            xlq.record_fill(slot, fetch_latency)
                        elif useful_l1:
                            line = l1d.lookup(block)
                            line_latency = line.latency \
                                if line is not None else fetch_latency
                            xlq.record_prefetch_hit(slot, issue_time,
                                                    line_latency)

                    if classifier is not None or on_access:
                        # Under on-commit training without a classifier,
                        # nothing consumes an access-time event -- skip
                        # its construction.
                        event = TrainingEvent(
                            ip, block, hit_level == 0, issue_time,
                            issue_time, fetch_latency, hit_level,
                            useful_l1 if train_l1 else useful_l2)

                    if classifier is not None:
                        # A late prefetch may be merged at either level
                        # (L1-fill requests are demoted to the L2 under
                        # MSHR pressure).
                        late_any = late_l1 or late_l2
                        if train_l1 or miss_l1:
                            classifier.on_access(event)
                        if train_l1 and miss_l1:
                            classifier.classify_miss(block, issue_time,
                                                     late_any)
                        elif not train_l1 and miss_l2:
                            classifier.classify_miss(block, issue_time,
                                                     late_any)

                    if on_access:
                        if train_l1 or miss_l1:
                            requests = train(event)
                            if requests:
                                issue_requests(requests, issue_time)
                        if ts_feedback and not wrong:
                            if train_l1:
                                prefetcher.note_demand(miss_l1, late_l1,
                                                       useful_l1)
                            else:
                                prefetcher.note_demand(miss_l2, late_l2,
                                                       useful_l2)
                    meta = (miss_l1, miss_l2, late_l1, late_l2,
                            useful_l1, useful_l2)
                else:
                    meta = _NO_PF_META

                if wrong:
                    n_wrong_loads += 1
                    continue
                n_loads += 1
                if delay_policy is not None:
                    delay_policy.note_load_completion(completion)
                # CoreModel.retire, inlined.
                ready = t_disp + 1
                if completion > ready:
                    ready = completion
                if ready > retire_cycle:
                    retire_cycle = ready
                    retire_slot = 0
                elif retire_slot < retire_width_m1:
                    retire_slot += 1
                else:
                    retire_cycle += 1
                    retire_slot = 0
                rob_append(retire_cycle)
                if retire_cycle > final_retire:
                    final_retire = retire_cycle
                if commit_loads:
                    commit_append((retire_cycle, True,
                                   (ip, block, hit_level, issue_time,
                                    fetch_latency, slot, meta)))
            elif flags & FLAG_STORE:
                if wrong:
                    continue
                # CoreModel.retire, inlined (stores complete in the ALU
                # pipeline; the L1D write happens at commit time).
                ready = t_disp + 1
                completion = t_disp + alu_latency
                if completion > ready:
                    ready = completion
                if ready > retire_cycle:
                    retire_cycle = ready
                    retire_slot = 0
                elif retire_slot < retire_width_m1:
                    retire_slot += 1
                else:
                    retire_cycle += 1
                    retire_slot = 0
                rob_append(retire_cycle)
                if retire_cycle > final_retire:
                    final_retire = retire_cycle
                commit_append((retire_cycle, False, vaddr >> BLOCK_SHIFT))
                n_stores += 1
            else:
                if wrong:
                    continue
                completion = t_disp + alu_latency
                if flags & FLAG_BRANCH:
                    if delay_policy is not None:
                        completion = delay_policy.note_branch(completion)
                    if flags & FLAG_MISPREDICT:
                        pending_redirect = completion + penalty
                        n_mispredicts += 1
                # CoreModel.retire, inlined.
                ready = t_disp + 1
                if completion > ready:
                    ready = completion
                if ready > retire_cycle:
                    retire_cycle = ready
                    retire_slot = 0
                elif retire_slot < retire_width_m1:
                    retire_slot += 1
                else:
                    retire_cycle += 1
                    retire_slot = 0
                rob_append(retire_cycle)
                if retire_cycle > final_retire:
                    final_retire = retire_cycle

            committed += 1
            n_instr += 1
            if not warmed and committed >= warmup_target:
                warmed = True
                core._dispatch_cycle = dispatch_cycle
                core._dispatch_slot = dispatch_slot
                core._retire_cycle = retire_cycle
                core._retire_slot = retire_slot
                core._load_seq = load_seq
                core.final_retire = final_retire
                self._reset_measurement()
                n_instr = stats.committed_instructions
                n_loads = stats.committed_loads
                n_stores = stats.committed_stores
                n_wrong_loads = stats.wrong_path_loads
                n_mispredicts = stats.branch_mispredicts
                if sampler is not None:
                    sample_at = sampler.next_at
            elif n_instr >= sample_at:
                stats.committed_instructions = n_instr
                stats.committed_loads = n_loads
                stats.committed_stores = n_stores
                stats.wrong_path_loads = n_wrong_loads
                stats.branch_mispredicts = n_mispredicts
                core._dispatch_cycle = dispatch_cycle
                core._dispatch_slot = dispatch_slot
                core._retire_cycle = retire_cycle
                core._retire_slot = retire_slot
                core._load_seq = load_seq
                core.final_retire = final_retire
                sampler.sample(self)
                sample_at = sampler.next_at
            if chunk:
                since_yield += 1
                if since_yield >= chunk:
                    since_yield = 0
                    self._seq = seq
                    self._pending_redirect = pending_redirect
                    stats.committed_instructions = n_instr
                    stats.committed_loads = n_loads
                    stats.committed_stores = n_stores
                    stats.wrong_path_loads = n_wrong_loads
                    stats.branch_mispredicts = n_mispredicts
                    core._dispatch_cycle = dispatch_cycle
                    core._dispatch_slot = dispatch_slot
                    core._retire_cycle = retire_cycle
                    core._retire_slot = retire_slot
                    core._load_seq = load_seq
                    core.final_retire = final_retire
                    yield
        self._seq = seq
        self._pending_redirect = pending_redirect
        stats.committed_instructions = n_instr
        stats.committed_loads = n_loads
        stats.committed_stores = n_stores
        stats.wrong_path_loads = n_wrong_loads
        stats.branch_mispredicts = n_mispredicts
        core._dispatch_cycle = dispatch_cycle
        core._dispatch_slot = dispatch_slot
        core._retire_cycle = retire_cycle
        core._retire_slot = retire_slot
        core._load_seq = load_seq
        core.final_retire = final_retire

    def _stepper_batch(self, trace: Trace, warmup: float, chunk: int):
        """Batch (block at a time) simulate loop.

        A one-time prescan (:mod:`repro.sim.batch`, vectorized under
        NumPy) classifies every record into a small-int code and
        precomputes the pure-address work: block numbers, dTLB same-page
        runs, and the committed-record prefix counts.  The outer loop
        binary-searches those prefix counts to place every boundary --
        warm-up reset, sampler interval, multicore yield -- at an exact
        record index, so the inner loop carries **zero** per-record
        boundary checks, flag tests, or address arithmetic; it dispatches
        on the precomputed code and falls into the same inlined per-load
        pipeline as the scalar loop (plus an L1D plain-hit fast path
        whose guard, ``fill_time <= issue_time + latency``, is
        conservative: any load it accepts would be a plain hit under any
        port schedule, so the full ``CacheLevel.access`` only runs for
        misses and in-flight fills).  Timing-dependent work -- cache
        misses, DRAM, prefetcher callbacks, commit drains -- is exactly
        the scalar code; statistics are bit-identical by construction and
        pinned by the golden suite.
        """
        plan = plan_for(trace)
        n = plan.n
        codes = plan.codes
        blocks = plan.blocks
        ips = plan.ips
        cum = plan.cum
        same_page = plan.same_page
        committed_total = plan.committed_total
        index_of_committed = plan.index_of_committed

        warmup_target = int(trace.committed_count * warmup)
        if warmup_target >= trace.committed_count:
            warmup_target = max(trace.committed_count - 1, 0)
        warmed = warmup_target == 0
        committed = 0
        since_yield = 0

        core = self.core
        stats = self.core_stats
        n_instr = stats.committed_instructions
        n_loads = stats.committed_loads
        n_stores = stats.committed_stores
        n_wrong_loads = stats.wrong_path_loads
        n_mispredicts = stats.branch_mispredicts
        sampler = self.sampler
        commit_q = self._commit_q
        commit_append = commit_q.append
        drain_commits = self._drainer
        if drain_commits is None:
            drain_commits = self._drainer = self._make_drainer()
        delay_policy = self.delay_policy
        core_params = self.params.core
        issue_latency = core_params.load_issue_latency
        alu_latency = core_params.alu_latency
        penalty = core_params.mispredict_penalty
        sample_at = sampler.next_at if sampler is not None else _NEVER
        #: ``seq`` of record ``j`` (0-based) is ``seq_base + j + 1``; it
        #: is only consumed by the secure GM fill, so it is computed there
        #: instead of being incremented per record.
        seq_base = self._seq
        pending_redirect = self._pending_redirect

        rob = core._rob
        lq = core._lq
        rob_append = rob.append
        rob_popleft = rob.popleft
        lq_append = lq.append
        lq_popleft = lq.popleft
        # Local occupancy counters: every committed record pops at most
        # one ROB entry and appends exactly one (loads do the same to
        # the LQ), so occupancy only grows while a queue is filling and
        # then pins at capacity -- the per-record ``len()`` calls become
        # int compares.  Nothing outside this generator touches the
        # deques while it runs.
        rob_len = len(rob)
        lq_len = len(lq)
        rob_entries = core._rob_entries
        issue_width = core._issue_width
        retire_width_m1 = core._retire_width_m1
        lq_entries = core._lq_entries
        dispatch_cycle = core._dispatch_cycle
        dispatch_slot = core._dispatch_slot
        retire_cycle = core._retire_cycle
        retire_slot = core._retire_slot
        load_seq = core._load_seq
        final_retire = core.final_retire

        hierarchy = self.hierarchy
        secure = hierarchy.secure
        l1d_access = hierarchy._l1d_access
        l1d = hierarchy.l1d
        if secure:
            gm = hierarchy.gm
            gm_apply = gm.apply_until
            gm_fill = gm.fill
            gm_heap = hierarchy._gm_heap
            gm_stats = hierarchy.gm_stats
            gm_hit_latency = hierarchy._gm_hit_latency
            l1d_probe = l1d.probe
            # GhostMinionCache.lookup (no time bound), inlined below: a
            # resident-set probe falling back to the pending-fill dict.
            gm_sets = gm.sets
            gm_mask = gm._set_mask
            gm_pending = gm._pending
        # L1D plain-hit fast-path collaborators (see CacheLevel.access;
        # the inline below replicates its plain-hit arm exactly and only
        # fires when the guard proves that arm would be taken).
        l1_sets = l1d.sets
        l1_mask = l1d._set_mask
        l1_latency = l1d._latency
        l1_accesses = l1d._accesses
        l1_hits = l1d._hits
        l1_port_acquire = l1d._port_acquire
        # Port-bucket fast path (see _PortBucket.acquire): with a free
        # port at ``issue_time`` the charge is one dict store and the
        # start cycle is ``issue_time`` itself, so the plain-hit arms
        # below inline that case and only call ``acquire`` when the
        # cycle is saturated (the walk-forward slow path).  The trim
        # bookkeeping stays exact: ``_acquires`` is counted here too,
        # and the occasional slow-path call runs the trim.
        l1_port_bucket = l1d._ports
        l1_port_counts = l1_port_bucket.counts
        l1_port_n = l1_port_bucket.ports
        l1_stats_all = l1d.stats
        l1_level = l1d.level
        l1d_contains = l1d.contains
        tlb = self.tlb
        tlb_enabled = tlb._enabled
        tlb_stats = tlb.stats
        dtlb_sets = tlb._dtlb_sets
        dtlb_mask = tlb._dtlb_mask
        tlb_miss = tlb._miss
        prefetcher = self.prefetcher
        track = prefetcher is not None
        if track:
            l1_stats = l1d.stats
            l2_stats = hierarchy.l2.stats
            train_l1 = prefetcher.train_level == 0
            train = prefetcher.train
        classifier = self.classifier
        on_access = self.train_mode == MODE_ON_ACCESS
        ts_feedback = self._ts_feedback
        hit_levels = self.hit_levels
        if hit_levels is not None:
            # HitLevelQueue.record, inlined below: the 2-bit range check
            # is vacuous (the sim only produces levels 0..3), leaving a
            # modulo and a list store per committed load.
            hl_levels = hit_levels._levels
            hl_entries = hit_levels.lq_entries
        xlq = self.xlq
        if xlq is not None:
            # XLQ.record_miss + record_fill, fused and inlined: the fill
            # always follows its miss immediately here, so the validity
            # re-check inside record_fill is vacuous.
            xlq_slots = xlq._slots
            xlq_entries = xlq.entries
        commit_loads = self._commit_loads
        issue_requests = self._issuer
        if issue_requests is None:
            issue_requests = self._issuer = self._make_issuer()
        # Direct tuple construction for training events: skips the
        # NamedTuple's Python ``__new__`` frame on the per-load path.
        tuple_new = tuple.__new__
        # Commit-queue head cache: the queue is appended in retire order
        # and popped only by ``drain_commits`` (nothing outside this
        # generator touches it while it runs), so the head's due time
        # only changes on a drain or when an append undercuts it.  The
        # per-record "any commit due?" test is then one int compare
        # instead of a deque truth test plus an indexed peek.
        next_commit = commit_q[0][0] if commit_q else _NEVER

        i = 0
        while i < n:
            # Earliest boundary ahead, as a committed-record count; the
            # prefix-count search turns it into an exclusive record index.
            # Every candidate is strictly greater than ``committed`` (the
            # scalar loop fires each at equality and then advances it), so
            # the block is never empty.
            bound = warmup_target if not warmed else None
            if sampler is not None:
                c_sample = committed + sample_at - n_instr
                if bound is None or c_sample < bound:
                    bound = c_sample
            if chunk:
                c_yield = committed + chunk - since_yield
                if bound is None or c_yield < bound:
                    bound = c_yield
            if bound is None or bound > committed_total:
                stop = n
            else:
                stop = index_of_committed(bound) + 1

            for j in range(i, stop):
                code = codes[j]
                if code < 5:  # committed-path record
                    if pending_redirect:
                        # CoreModel.redirect, inlined.
                        if pending_redirect > dispatch_cycle:
                            dispatch_cycle = pending_redirect
                            dispatch_slot = 0
                        pending_redirect = 0
                    # CoreModel.dispatch, inlined.
                    if rob_len >= rob_entries:
                        oldest = rob_popleft()
                        if oldest > dispatch_cycle:
                            dispatch_cycle = oldest
                            dispatch_slot = 0
                    else:
                        rob_len += 1
                    t_disp = dispatch_cycle
                    dispatch_slot += 1
                    if dispatch_slot >= issue_width:
                        dispatch_cycle += 1
                        dispatch_slot = 0
                    if next_commit <= t_disp:
                        drain_commits(t_disp)
                        next_commit = commit_q[0][0] if commit_q else _NEVER

                    if code == 3:  # C_LOAD
                        block = blocks[j]
                        issue_time = t_disp + issue_latency
                        # CoreModel.lq_allocate, inlined.
                        if lq_len >= lq_entries:
                            oldest = lq_popleft()
                            if oldest > issue_time:
                                issue_time = oldest
                        else:
                            lq_len += 1
                        if tlb_enabled:
                            tlb_stats.dtlb_accesses += 1
                            # The prescan proved same-page loads are
                            # guaranteed dTLB hits whose move-to-back is
                            # a no-op; only page changes probe the dTLB.
                            if not same_page[j]:
                                page = block >> 6
                                set_ = dtlb_sets[page & dtlb_mask]
                                if page in set_:
                                    del set_[page]
                                    set_[page] = None
                                else:
                                    issue_time += tlb_miss(page)
                        if delay_policy is not None:
                            issue_time = delay_policy.issue_time(
                                issue_time, l1d_contains(block, issue_time))
                        # Lateness/usefulness booleans are computed per
                        # arm: the plain-hit fast paths below cannot
                        # change the merge/useful counters (except the
                        # one bump they perform themselves), so only the
                        # full-access arms pay the four before/after
                        # stats reads.
                        if secure:
                            # hierarchy._speculative_load, inlined.
                            if gm_heap and gm_heap[0][0] <= issue_time:
                                gm_apply(issue_time)
                            gm_line = gm_sets[block & gm_mask].get(block)
                            if gm_line is None:
                                gm_line = gm_pending.get(block)
                            if gm_line is not None:
                                gm_stats.gm_hits += 1
                                l1d_probe(block, issue_time, REQ_LOAD)
                                completion = issue_time + gm_hit_latency
                                fill_time = gm_line.fill_time
                                if fill_time > completion:
                                    completion = fill_time
                                hit_level = 0
                                fetch_latency = completion - issue_time
                                gm_hit = True
                                if track:
                                    # A GM hit only probes the L1D tags:
                                    # no merge or usefulness change.
                                    late_l1 = late_l2 = False
                                    useful_l1 = useful_l2 = False
                            else:
                                gm_stats.gm_misses += 1
                                line = l1_sets[block & l1_mask].get(block)
                                if line is not None and line.fill_time \
                                        <= issue_time + l1_latency:
                                    # Invisible-walk plain hit (update=False).
                                    l1_accesses[REQ_LOAD] += 1
                                    pc = l1_port_counts.get(issue_time, 0)
                                    if pc < l1_port_n:
                                        l1_port_counts[issue_time] = pc + 1
                                        l1_port_bucket._acquires += 1
                                        completion = issue_time + l1_latency
                                    else:
                                        completion = \
                                            l1_port_acquire(issue_time) \
                                            + l1_latency
                                    l1_hits[REQ_LOAD] += 1
                                    if line.prefetched \
                                            and not line.was_demand_hit:
                                        line.was_demand_hit = True
                                        l1_stats_all.prefetches_useful += 1
                                        if l1d.events is not None:
                                            l1d.events.emit(
                                                "pf_use", issue_time, block,
                                                l1d.name)
                                        useful_l1 = True
                                    else:
                                        useful_l1 = False
                                    late_l1 = late_l2 = useful_l2 = False
                                    hit_level = l1_level
                                else:
                                    if track:
                                        merged1_pre = l1_stats \
                                            .demand_merged_into_prefetch
                                        useful1_pre = \
                                            l1_stats.prefetches_useful
                                        merged2_pre = l2_stats \
                                            .demand_merged_into_prefetch
                                        useful2_pre = \
                                            l2_stats.prefetches_useful
                                    completion, hit_level = l1d_access(
                                        block, issue_time, REQ_LOAD, False,
                                        False, True)
                                    if track:
                                        late_l1 = l1_stats \
                                            .demand_merged_into_prefetch \
                                            > merged1_pre
                                        useful_l1 = \
                                            l1_stats.prefetches_useful \
                                            > useful1_pre
                                        late_l2 = l2_stats \
                                            .demand_merged_into_prefetch \
                                            > merged2_pre
                                        useful_l2 = \
                                            l2_stats.prefetches_useful \
                                            > useful2_pre
                                fetch_latency = completion - issue_time
                                gm_hit = False
                                if hit_level != 0:
                                    gm_fill(block, completion,
                                            seq_base + j + 1, fetch_latency,
                                            False)
                        else:
                            line = l1_sets[block & l1_mask].get(block)
                            if line is not None and line.fill_time \
                                    <= issue_time + l1_latency:
                                # CacheLevel.access plain-hit arm, inlined.
                                l1_accesses[REQ_LOAD] += 1
                                pc = l1_port_counts.get(issue_time, 0)
                                if pc < l1_port_n:
                                    l1_port_counts[issue_time] = pc + 1
                                    l1_port_bucket._acquires += 1
                                    completion = issue_time + l1_latency
                                else:
                                    completion = \
                                        l1_port_acquire(issue_time) \
                                        + l1_latency
                                l1_hits[REQ_LOAD] += 1
                                line.last_touch = issue_time
                                line.rrpv = 0
                                if line.prefetched \
                                        and not line.was_demand_hit:
                                    line.was_demand_hit = True
                                    l1_stats_all.prefetches_useful += 1
                                    if l1d.events is not None:
                                        l1d.events.emit(
                                            "pf_use", issue_time, block,
                                            l1d.name)
                                    useful_l1 = True
                                else:
                                    useful_l1 = False
                                late_l1 = late_l2 = useful_l2 = False
                                hit_level = l1_level
                            else:
                                if track:
                                    merged1_pre = l1_stats \
                                        .demand_merged_into_prefetch
                                    useful1_pre = l1_stats.prefetches_useful
                                    merged2_pre = l2_stats \
                                        .demand_merged_into_prefetch
                                    useful2_pre = l2_stats.prefetches_useful
                                completion, hit_level = l1d_access(
                                    block, issue_time, REQ_LOAD, True, True,
                                    True)
                                if track:
                                    late_l1 = l1_stats \
                                        .demand_merged_into_prefetch \
                                        > merged1_pre
                                    useful_l1 = l1_stats.prefetches_useful \
                                        > useful1_pre
                                    late_l2 = l2_stats \
                                        .demand_merged_into_prefetch \
                                        > merged2_pre
                                    useful_l2 = l2_stats.prefetches_useful \
                                        > useful2_pre
                            fetch_latency = completion - issue_time
                            gm_hit = False
                        # CoreModel.lq_complete, inlined.
                        lq_append(completion)
                        slot = load_seq % lq_entries
                        load_seq += 1
                        miss_l1 = hit_level >= 1

                        if hit_levels is not None:
                            hl_levels[slot % hl_entries] = hit_level

                        if track:
                            miss_l2 = hit_level >= 2

                            if xlq is not None:
                                if miss_l1 and not gm_hit:
                                    entry = xlq_slots[slot % xlq_entries]
                                    entry.valid = True
                                    entry.hitp = False
                                    entry.ts = issue_time & TS_MASK
                                    entry.latency = min(fetch_latency,
                                                        LAT_MASK)
                                elif useful_l1:
                                    line = l1d.lookup(block)
                                    line_latency = line.latency \
                                        if line is not None else fetch_latency
                                    xlq.record_prefetch_hit(slot, issue_time,
                                                            line_latency)

                            if classifier is not None or on_access:
                                event = tuple_new(TrainingEvent, (
                                    ips[j], block, hit_level == 0, issue_time,
                                    issue_time, fetch_latency, hit_level,
                                    useful_l1 if train_l1 else useful_l2))

                            if classifier is not None:
                                late_any = late_l1 or late_l2
                                if train_l1 or miss_l1:
                                    classifier.on_access(event)
                                if train_l1 and miss_l1:
                                    classifier.classify_miss(
                                        block, issue_time, late_any)
                                elif not train_l1 and miss_l2:
                                    classifier.classify_miss(
                                        block, issue_time, late_any)

                            if on_access:
                                if train_l1 or miss_l1:
                                    requests = train(event)
                                    if requests:
                                        issue_requests(requests, issue_time)
                                if ts_feedback:
                                    if train_l1:
                                        prefetcher.note_demand(
                                            miss_l1, late_l1, useful_l1)
                                    else:
                                        prefetcher.note_demand(
                                            miss_l2, late_l2, useful_l2)
                            meta = (miss_l1, miss_l2, late_l1, late_l2,
                                    useful_l1, useful_l2)
                        else:
                            meta = _NO_PF_META

                        n_loads += 1
                        if delay_policy is not None:
                            delay_policy.note_load_completion(completion)
                        # CoreModel.retire, inlined.
                        ready = t_disp + 1
                        if completion > ready:
                            ready = completion
                        if ready > retire_cycle:
                            retire_cycle = ready
                            retire_slot = 0
                        elif retire_slot < retire_width_m1:
                            retire_slot += 1
                        else:
                            retire_cycle += 1
                            retire_slot = 0
                        rob_append(retire_cycle)
                        if retire_cycle > final_retire:
                            final_retire = retire_cycle
                        if commit_loads:
                            commit_append((retire_cycle, True,
                                           (ips[j], block, hit_level,
                                            issue_time, fetch_latency, slot,
                                            meta)))
                            if retire_cycle < next_commit:
                                next_commit = retire_cycle
                    elif code == 0:  # C_ALU
                        completion = t_disp + alu_latency
                        ready = t_disp + 1
                        if completion > ready:
                            ready = completion
                        if ready > retire_cycle:
                            retire_cycle = ready
                            retire_slot = 0
                        elif retire_slot < retire_width_m1:
                            retire_slot += 1
                        else:
                            retire_cycle += 1
                            retire_slot = 0
                        rob_append(retire_cycle)
                        if retire_cycle > final_retire:
                            final_retire = retire_cycle
                    elif code == 4:  # C_STORE
                        ready = t_disp + 1
                        completion = t_disp + alu_latency
                        if completion > ready:
                            ready = completion
                        if ready > retire_cycle:
                            retire_cycle = ready
                            retire_slot = 0
                        elif retire_slot < retire_width_m1:
                            retire_slot += 1
                        else:
                            retire_cycle += 1
                            retire_slot = 0
                        rob_append(retire_cycle)
                        if retire_cycle > final_retire:
                            final_retire = retire_cycle
                        commit_append((retire_cycle, False, blocks[j]))
                        if retire_cycle < next_commit:
                            next_commit = retire_cycle
                        n_stores += 1
                    else:  # C_BRANCH (1) or C_MISPREDICT (2)
                        completion = t_disp + alu_latency
                        if delay_policy is not None:
                            completion = delay_policy.note_branch(completion)
                        if code == 2:
                            pending_redirect = completion + penalty
                            n_mispredicts += 1
                        ready = t_disp + 1
                        if completion > ready:
                            ready = completion
                        if ready > retire_cycle:
                            retire_cycle = ready
                            retire_slot = 0
                        elif retire_slot < retire_width_m1:
                            retire_slot += 1
                        else:
                            retire_cycle += 1
                            retire_slot = 0
                        rob_append(retire_cycle)
                        if retire_cycle > final_retire:
                            final_retire = retire_cycle
                else:
                    # Wrong-path record: consumes its dispatch slot and
                    # can trigger commit drains, but never redirects,
                    # retires, or checks ROB backpressure.
                    t_disp = dispatch_cycle
                    dispatch_slot += 1
                    if dispatch_slot >= issue_width:
                        dispatch_cycle += 1
                        dispatch_slot = 0
                    if next_commit <= t_disp:
                        drain_commits(t_disp)
                        next_commit = commit_q[0][0] if commit_q else _NEVER
                    if code == 5:  # C_WRONG_LOAD
                        block = blocks[j]
                        issue_time = t_disp + issue_latency
                        if lq_len >= lq_entries:
                            oldest = lq_popleft()
                            if oldest > issue_time:
                                issue_time = oldest
                        else:
                            lq_len += 1
                        if tlb_enabled:
                            tlb_stats.dtlb_accesses += 1
                            if not same_page[j]:
                                page = block >> 6
                                set_ = dtlb_sets[page & dtlb_mask]
                                if page in set_:
                                    del set_[page]
                                    set_[page] = None
                                else:
                                    issue_time += tlb_miss(page)
                        if delay_policy is not None:
                            l1d_hit = l1d_contains(block, issue_time)
                            if not l1d_hit:
                                # Delay-on-miss: wrong-path miss squashed.
                                lq_append(issue_time + 1)
                                load_seq += 1
                                n_wrong_loads += 1
                                continue
                            issue_time = delay_policy.issue_time(issue_time,
                                                                 l1d_hit)
                        if secure:
                            if gm_heap and gm_heap[0][0] <= issue_time:
                                gm_apply(issue_time)
                            gm_line = gm_sets[block & gm_mask].get(block)
                            if gm_line is None:
                                gm_line = gm_pending.get(block)
                            if gm_line is not None:
                                gm_stats.gm_hits += 1
                                l1d_probe(block, issue_time, REQ_LOAD)
                                completion = issue_time + gm_hit_latency
                                fill_time = gm_line.fill_time
                                if fill_time > completion:
                                    completion = fill_time
                                hit_level = 0
                                fetch_latency = completion - issue_time
                                gm_hit = True
                                if track:
                                    # A GM hit only probes the L1D tags:
                                    # no merge or usefulness change.
                                    late_l1 = late_l2 = False
                                    useful_l1 = useful_l2 = False
                            else:
                                gm_stats.gm_misses += 1
                                line = l1_sets[block & l1_mask].get(block)
                                if line is not None and line.fill_time \
                                        <= issue_time + l1_latency:
                                    # count_useful=False: no usefulness
                                    # marking on wrong-path hits.
                                    l1_accesses[REQ_LOAD] += 1
                                    pc = l1_port_counts.get(issue_time, 0)
                                    if pc < l1_port_n:
                                        l1_port_counts[issue_time] = pc + 1
                                        l1_port_bucket._acquires += 1
                                        completion = issue_time + l1_latency
                                    else:
                                        completion = \
                                            l1_port_acquire(issue_time) \
                                            + l1_latency
                                    l1_hits[REQ_LOAD] += 1
                                    # count_useful=False: the wrong-path
                                    # hit can change no merge/useful
                                    # counter at all.
                                    late_l1 = late_l2 = False
                                    useful_l1 = useful_l2 = False
                                    hit_level = l1_level
                                else:
                                    if track:
                                        merged1_pre = l1_stats \
                                            .demand_merged_into_prefetch
                                        useful1_pre = \
                                            l1_stats.prefetches_useful
                                        merged2_pre = l2_stats \
                                            .demand_merged_into_prefetch
                                        useful2_pre = \
                                            l2_stats.prefetches_useful
                                    completion, hit_level = l1d_access(
                                        block, issue_time, REQ_LOAD, False,
                                        False, False)
                                    if track:
                                        late_l1 = l1_stats \
                                            .demand_merged_into_prefetch \
                                            > merged1_pre
                                        useful_l1 = \
                                            l1_stats.prefetches_useful \
                                            > useful1_pre
                                        late_l2 = l2_stats \
                                            .demand_merged_into_prefetch \
                                            > merged2_pre
                                        useful_l2 = \
                                            l2_stats.prefetches_useful \
                                            > useful2_pre
                                fetch_latency = completion - issue_time
                                gm_hit = False
                                if hit_level != 0:
                                    gm_fill(block, completion,
                                            seq_base + j + 1, fetch_latency,
                                            True)
                        else:
                            line = l1_sets[block & l1_mask].get(block)
                            if line is not None and line.fill_time \
                                    <= issue_time + l1_latency:
                                l1_accesses[REQ_LOAD] += 1
                                pc = l1_port_counts.get(issue_time, 0)
                                if pc < l1_port_n:
                                    l1_port_counts[issue_time] = pc + 1
                                    l1_port_bucket._acquires += 1
                                    completion = issue_time + l1_latency
                                else:
                                    completion = \
                                        l1_port_acquire(issue_time) \
                                        + l1_latency
                                l1_hits[REQ_LOAD] += 1
                                line.last_touch = issue_time
                                line.rrpv = 0
                                # count_useful=False: no merge/useful
                                # counter can change on this arm.
                                late_l1 = late_l2 = False
                                useful_l1 = useful_l2 = False
                                hit_level = l1_level
                            else:
                                if track:
                                    merged1_pre = l1_stats \
                                        .demand_merged_into_prefetch
                                    useful1_pre = l1_stats.prefetches_useful
                                    merged2_pre = l2_stats \
                                        .demand_merged_into_prefetch
                                    useful2_pre = l2_stats.prefetches_useful
                                completion, hit_level = l1d_access(
                                    block, issue_time, REQ_LOAD, True, True,
                                    False)
                                if track:
                                    late_l1 = l1_stats \
                                        .demand_merged_into_prefetch \
                                        > merged1_pre
                                    useful_l1 = l1_stats.prefetches_useful \
                                        > useful1_pre
                                    late_l2 = l2_stats \
                                        .demand_merged_into_prefetch \
                                        > merged2_pre
                                    useful_l2 = l2_stats.prefetches_useful \
                                        > useful2_pre
                            fetch_latency = completion - issue_time
                            gm_hit = False
                        lq_append(completion)
                        slot = load_seq % lq_entries
                        load_seq += 1
                        miss_l1 = hit_level >= 1

                        if track:
                            miss_l2 = hit_level >= 2

                            if classifier is not None or on_access:
                                event = tuple_new(TrainingEvent, (
                                    ips[j], block, hit_level == 0, issue_time,
                                    issue_time, fetch_latency, hit_level,
                                    useful_l1 if train_l1 else useful_l2))

                            if classifier is not None:
                                late_any = late_l1 or late_l2
                                if train_l1 or miss_l1:
                                    classifier.on_access(event)
                                if train_l1 and miss_l1:
                                    classifier.classify_miss(
                                        block, issue_time, late_any)
                                elif not train_l1 and miss_l2:
                                    classifier.classify_miss(
                                        block, issue_time, late_any)

                            if on_access and (train_l1 or miss_l1):
                                # Transient training (Section III-B); no
                                # TS lateness feedback on the wrong path.
                                requests = train(event)
                                if requests:
                                    issue_requests(requests, issue_time)
                        n_wrong_loads += 1
                    # C_WRONG_OTHER: nothing further.

            # Block accounting + the boundary actions, in the scalar
            # loop's exact order (warm-up reset takes precedence over a
            # coinciding sample; a coinciding yield still fires).
            new_committed = cum[stop - 1]
            delta = new_committed - committed
            committed = new_committed
            n_instr += delta
            i = stop
            if chunk:
                since_yield += delta
            if not warmed and committed >= warmup_target:
                warmed = True
                core._dispatch_cycle = dispatch_cycle
                core._dispatch_slot = dispatch_slot
                core._retire_cycle = retire_cycle
                core._retire_slot = retire_slot
                core._load_seq = load_seq
                core.final_retire = final_retire
                self._reset_measurement()
                n_instr = stats.committed_instructions
                n_loads = stats.committed_loads
                n_stores = stats.committed_stores
                n_wrong_loads = stats.wrong_path_loads
                n_mispredicts = stats.branch_mispredicts
                if sampler is not None:
                    sample_at = sampler.next_at
            elif n_instr >= sample_at:
                stats.committed_instructions = n_instr
                stats.committed_loads = n_loads
                stats.committed_stores = n_stores
                stats.wrong_path_loads = n_wrong_loads
                stats.branch_mispredicts = n_mispredicts
                core._dispatch_cycle = dispatch_cycle
                core._dispatch_slot = dispatch_slot
                core._retire_cycle = retire_cycle
                core._retire_slot = retire_slot
                core._load_seq = load_seq
                core.final_retire = final_retire
                sampler.sample(self)
                sample_at = sampler.next_at
            if chunk and since_yield >= chunk:
                since_yield = 0
                self._seq = seq_base + stop
                self._pending_redirect = pending_redirect
                stats.committed_instructions = n_instr
                stats.committed_loads = n_loads
                stats.committed_stores = n_stores
                stats.wrong_path_loads = n_wrong_loads
                stats.branch_mispredicts = n_mispredicts
                core._dispatch_cycle = dispatch_cycle
                core._dispatch_slot = dispatch_slot
                core._retire_cycle = retire_cycle
                core._retire_slot = retire_slot
                core._load_seq = load_seq
                core.final_retire = final_retire
                yield
        self._seq = seq_base + n
        self._pending_redirect = pending_redirect
        stats.committed_instructions = n_instr
        stats.committed_loads = n_loads
        stats.committed_stores = n_stores
        stats.wrong_path_loads = n_wrong_loads
        stats.branch_mispredicts = n_mispredicts
        core._dispatch_cycle = dispatch_cycle
        core._dispatch_slot = dispatch_slot
        core._retire_cycle = retire_cycle
        core._retire_slot = retire_slot
        core._load_seq = load_seq
        core.final_retire = final_retire

    def finalize(self, trace: Trace) -> SimResult:
        """Complete the run started by :meth:`stepper`; return results."""
        self._drain_commits(None)
        if self.classifier is not None:
            self.classifier.finalize()
        self.core_stats.cycles = max(
            self.core.final_retire - self._warmup_cycle, 1)
        if self.sampler is not None:
            self.sampler.flush(self)
        return self._build_result(trace)

    def measurement_cycle(self) -> int:
        """Cycles elapsed since the warm-up reset (the measured clock)."""
        return self.core.final_retire - self._warmup_cycle

    def metrics(self) -> MetricRegistry:
        """A typed registry over every live stats structure.

        Reads are bound to the stats objects, so one registry built up
        front observes the whole run; snapshots taken mid-run see current
        values.
        """
        registry = MetricRegistry()
        registry.register_struct("core", self.core_stats)
        hierarchy = self.hierarchy
        for prefix, level in (("l1d", hierarchy.l1d), ("l2", hierarchy.l2),
                              ("llc", hierarchy.llc)):
            registry.register_struct(prefix, level.stats)
        if self.secure:
            registry.register_struct("gm", hierarchy.gm_stats)
        registry.register_struct("dram", hierarchy.dram.stats)
        registry.register_struct("tlb", self.tlb.stats)
        registry.gauge("core.ipc", self.core_stats.ipc,
                       description="committed instructions per cycle")
        registry.gauge("dram.row_hit_rate",
                       hierarchy.dram.stats.row_hit_rate,
                       description="row-buffer hit fraction")
        for prefix, level in (("l1d", hierarchy.l1d), ("l2", hierarchy.l2),
                              ("llc", hierarchy.llc)):
            registry.gauge(f"{prefix}.prefetch_accuracy",
                           level.stats.prefetch_accuracy,
                           description="useful / resolved prefetches")
        if self.secure:
            registry.gauge("gm.suf_accuracy", hierarchy.gm_stats.suf_accuracy,
                           description="correct / decided SUF filterings")
        return registry

    # ------------------------------------------------------------------
    # commit stage
    # ------------------------------------------------------------------

    def _drain_commits(self, until: Optional[int]) -> None:
        """Drain queued commit actions due at or before ``until``.

        Delegates to the cached closure from :meth:`_make_drainer`; the
        steppers hoist that closure directly, so the ~20-collaborator
        preamble runs once per system instead of once per drain call.
        """
        drainer = self._drainer
        if drainer is None:
            drainer = self._drainer = self._make_drainer()
        drainer(until)

    def _make_drainer(self):
        queue = self._commit_q
        hierarchy = self.hierarchy
        # hierarchy.demand_store is a one-line wrapper around the L1D
        # access (the returned completion is unused here); calling the
        # access directly drops a frame per committed store.  The hoist
        # picks up the flattened descent when the hierarchy installed one.
        store_access = hierarchy._l1d_access
        hit_levels = self.hit_levels
        has_hl = hit_levels is not None
        if has_hl:
            # HitLevelQueue.read, inlined: one modulo + list read.
            hl_levels = hit_levels._levels
            hl_entries = hit_levels.lq_entries
        prefetcher = self.prefetcher
        # hierarchy.commit_load collaborators, hoisted: the whole commit
        # pipeline is inlined below (commit_load remains the readable
        # reference and the public per-load API).
        secure = hierarchy.secure
        events = hierarchy.events
        if secure:
            gm_stats = hierarchy.gm_stats
            gm_heap = hierarchy._gm_heap
            gm_apply = hierarchy.gm.apply_until
            # GhostMinionCache.take, inlined at the drain site: a
            # resident-set pop falling back to the pending-fill dict.
            gm_sets = hierarchy.gm.sets
            gm_mask = hierarchy.gm._set_mask
            gm_pending = hierarchy.gm._pending
            commit_filter = hierarchy.commit_filter
            filter_memo = hierarchy._filter_memo
            l1d_contains = hierarchy._l1d_contains
            l1d_commit_write = hierarchy._l1d_commit_write
            l1d_access = hierarchy._l1d_access
            gm_latency = hierarchy._gm_latency
            record_suf_stop = hierarchy._record_suf_stop
            refetch_batch = hierarchy._refetch_batch
            # Naive on-commit training consumes each re-fetch completion
            # inline (the misleading update latency of Section V-B).
            # Batching would force its training tails behind the window,
            # reordering prefetch issues against the next loads' GM
            # bookkeeping -- a semantic change with nothing to show for
            # it (windows average ~1.1 re-fetches).  That mode keeps the
            # exact sequential per-block walk; batching applies when
            # nothing reads the completion mid-window (no prefetcher,
            # X-LQ training, on-access training).
            if prefetcher is not None \
                    and self.train_mode == MODE_ON_COMMIT \
                    and not self.use_xlq:
                refetch_batch = None
        train_commit = prefetcher is not None \
            and self.train_mode == MODE_ON_COMMIT
        if train_commit:
            train = prefetcher.train
            train_l1 = prefetcher.train_level == 0
            use_xlq = self.use_xlq
            if use_xlq:
                xlq_slots = self.xlq._slots
                xlq_entries = self.xlq.entries
            issue_requests = self._issuer
            if issue_requests is None:
                issue_requests = self._issuer = self._make_issuer()
            ts_feedback = self._ts_feedback
        tuple_new = tuple.__new__

        def drain(until: Optional[int]) -> None:
            # The drained window's re-fetches, batched: GhostMinion's
            # timestamp ordering is applied per load *before* the window
            # is collected, so deferring the hierarchy walks to one
            # shared pass (see flatwalk.make_refetch_batch) keeps GM
            # semantics exact while amortizing the descent and the DRAM
            # bank bookkeeping over the window.
            refetch_pairs = None
            while queue and (until is None or queue[0][0] <= until):
                t_ret, is_load, payload = queue.popleft()
                if not is_load:
                    store_access(payload, t_ret, REQ_STORE)
                    continue
                ip, block, hit_level, issue_time, fetch_latency, slot, meta = \
                    payload
                recorded_level = hl_levels[slot % hl_entries] \
                    if has_hl else hit_level
                # hierarchy.commit_load, inlined.
                if not secure:
                    update_latency = 0
                else:
                    if gm_heap and gm_heap[0][0] <= t_ret:
                        gm_apply(t_ret)
                    gm_line = gm_sets[block & gm_mask].pop(block, None)
                    if gm_line is None:
                        gm_line = gm_pending.pop(block, None)
                    if commit_filter is not None:
                        decision = filter_memo.get(recorded_level)
                        if decision is None:
                            decision = filter_memo[recorded_level] = \
                                commit_filter(recorded_level)
                    else:
                        decision = None
                    if decision is not None and decision.drop:
                        gm_stats.commit_drops_suf += 1
                        if l1d_contains(block):
                            gm_stats.suf_correct += 1
                        else:
                            gm_stats.suf_mispredict += 1
                        if events is not None:
                            events.emit("suf_drop", t_ret, block, "SUF")
                        update_latency = 0
                    elif gm_line is not None:
                        # On-commit write: the line moves GM -> L1D.
                        gm_stats.commit_writes += 1
                        if events is not None:
                            events.emit("gm_commit_write", t_ret, block, "GM")
                        if decision is not None:
                            record_suf_stop(block, recorded_level)
                            l1d_commit_write(block, t_ret,
                                             decision.gm_propagate,
                                             decision.wbb)
                        else:
                            l1d_commit_write(block, t_ret, True, True)
                        update_latency = gm_latency
                    else:
                        # GM line evicted before commit (or never existed):
                        # re-fetch into the non-speculative hierarchy.
                        gm_stats.commit_refetches += 1
                        if recorded_level > 0:
                            gm_stats.gm_lost_before_commit += 1
                        if events is not None:
                            events.emit("gm_refetch", t_ret, block, "GM")
                        if refetch_batch is None:
                            completion, _ = l1d_access(block, t_ret,
                                                       REQ_COMMIT)
                            update_latency = completion - t_ret
                        else:
                            if refetch_pairs is None:
                                refetch_pairs = []
                            refetch_pairs.append((block, t_ret))
                            update_latency = 0
                if not train_commit:
                    continue

                (miss_l1, miss_l2, late_l1, late_l2,
                 useful_l1, useful_l2) = meta

                # Build the training event the commit-stage prefetcher sees.
                # Naive on-commit training observes commit-ordered timestamps
                # and the on-commit update latency (the misleading value of
                # Section V-B).  With the X-LQ (TSB), the preserved access
                # time and GM fetch latency are used instead (XLQ.read,
                # inlined: read-and-invalidate the committing load's slot).
                if use_xlq:
                    entry = xlq_slots[slot % xlq_entries]
                    if not entry.valid:
                        # Regular L1D hit: no training action (Section V-C).
                        event = None
                    else:
                        entry.valid = False
                        event = tuple_new(TrainingEvent, (
                            ip, block, hit_level == 0, t_ret,
                            t_ret - ((t_ret - entry.ts) & TS_MASK),
                            entry.latency, hit_level, entry.hitp))
                else:
                    event = tuple_new(TrainingEvent, (
                        ip, block, hit_level == 0, t_ret, t_ret,
                        update_latency if update_latency > 1 else 1,
                        hit_level, useful_l1 if train_l1 else useful_l2))
                if event is not None and (train_l1 or hit_level >= 1):
                    requests = train(event)
                    if requests:
                        issue_requests(requests, t_ret)
                if ts_feedback:
                    if train_l1:
                        prefetcher.note_demand(miss_l1, late_l1, useful_l1)
                    else:
                        prefetcher.note_demand(miss_l2, late_l2, useful_l2)
            if refetch_pairs is not None:
                refetch_batch(refetch_pairs)
        return drain

    def _issue(self, requests, time: int) -> None:
        issue_prefetch = self.hierarchy.issue_prefetch
        classifier = self.classifier
        # Requests are NamedTuples; tuple unpacking reads both fields
        # without per-field attribute lookups.
        if classifier is None:
            for pf_block, fill_level in requests:
                issue_prefetch(pf_block, time, fill_level)
            return
        for pf_block, fill_level in requests:
            # Log the *trigger*, issued or not: the Fig. 6 commit-late
            # definition asks when the prefetcher triggered the line,
            # even if the request was redundant by then.
            classifier.on_real_prefetch(pf_block, time)
            issue_prefetch(pf_block, time, fill_level)

    def _make_issuer(self):
        """Fast-path twin of :meth:`_issue` (the readable reference).

        The common outcome of a prefetch request is a *drop* -- line
        already resident, already in flight, PQ or MSHR full, DRAM
        backlogged -- which the reference path pays three call frames to
        discover (``_issue`` -> ``MemoryHierarchy.issue_prefetch`` ->
        ``CacheLevel.issue_prefetch`` -> ``_drop_prefetch``).  This
        closure replicates that decision chain flat, charging the same
        counters in the same order, and only calls into ``access`` when
        a prefetch actually enters the memory system.  With event
        tracing attached it defers to the reference path so emission
        sites stay in one place.
        """
        hierarchy = self.hierarchy
        slow_issue = self._issue
        dram = hierarchy.dram
        l1d = hierarchy.l1d
        l2 = hierarchy.l2
        llc = hierarchy.llc
        l1_stats = l1d.stats
        l2_stats = l2.stats
        llc_stats = llc.stats
        l1_sets = l1d.sets
        l1_mask = l1d._set_mask
        l1_outstanding = l1d._outstanding
        l1_pq = l1d._pq_times
        l1_mshr = l1d._mshr_times
        l1_access = l1d._descend or l1d.access
        l2_sets = l2.sets
        l2_mask = l2._set_mask
        l2_outstanding = l2._outstanding
        l2_pq = l2._pq_times
        l2_mshr = l2._mshr_times
        l2_access = l2._descend or l2.access
        llc_issue = llc.issue_prefetch
        mshr_limit = hierarchy._l1d_mshrs
        classifier = self.classifier
        on_real = classifier.on_real_prefetch \
            if classifier is not None else None

        def issue(requests, time):
            if l1d.events is not None or l2.events is not None \
                    or llc.events is not None:
                slow_issue(requests, time)
                return
            for pf_block, fill_level in requests:
                if on_real is not None:
                    on_real(pf_block, time)
                # hierarchy.issue_prefetch, inlined: the DRAM low-priority
                # backlog throttle runs first, charging the *requested*
                # fill level's drop counter.
                reference = time + dram._service
                bus_free = dram._bus_free
                if bus_free > reference:
                    reference = bus_free
                if dram._bus_free_low - reference > dram._backlog_margin:
                    if fill_level <= 0:
                        l1_stats.prefetches_dropped += 1
                    elif fill_level == 1:
                        l2_stats.prefetches_dropped += 1
                    else:
                        llc_stats.prefetches_dropped += 1
                    continue
                if fill_level <= 0:
                    # Berti's orchestration rule: demote to the L2 when
                    # the L1D MSHRs are half occupied.
                    if 2 * (len(l1_mshr) - bisect_right(l1_mshr, time)) \
                            >= mshr_limit:
                        fill_level = 1
                    elif pf_block in l1_sets[pf_block & l1_mask] \
                            or pf_block in l1_outstanding \
                            or l1_pq[0] > time or l1_mshr[0] > time:
                        # CacheLevel.issue_prefetch's drop checks, in
                        # their exact order (resident / in flight, PQ
                        # full, MSHRs full).
                        l1_stats.prefetches_dropped += 1
                        continue
                    else:
                        l1_stats.prefetches_issued += 1
                        completion, _ = l1_access(
                            pf_block, time, REQ_PREFETCH, True, True)
                        del l1_pq[0]
                        insort(l1_pq, completion)
                        continue
                if fill_level == 1:
                    if pf_block in l2_sets[pf_block & l2_mask] \
                            or pf_block in l2_outstanding \
                            or l2_pq[0] > time or l2_mshr[0] > time:
                        l2_stats.prefetches_dropped += 1
                    else:
                        l2_stats.prefetches_issued += 1
                        completion, _ = l2_access(
                            pf_block, time, REQ_PREFETCH, True, True)
                        del l2_pq[0]
                        insort(l2_pq, completion)
                else:
                    llc_issue(pf_block, time)
        return issue

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------

    def _reset_measurement(self) -> None:
        self.hierarchy.reset_stats()
        self.core_stats.reset()
        self.tlb.reset_stats()
        if self.delay_policy is not None:
            self.delay_policy.reset_stats()
        if self.classifier is not None:
            self.classifier.resolve(self.core.final_retire)
            for category in self.classifier.counts:
                self.classifier.counts[category] = 0
        self._warmup_cycle = self.core.final_retire
        if self.sampler is not None:
            self.sampler.restart(self)

    def _build_result(self, trace: Trace) -> SimResult:
        stats = self.core_stats
        hierarchy = self.hierarchy
        classification = dict(self.classifier.counts) \
            if self.classifier is not None else None
        prefetcher = self.prefetcher
        extras: Dict[str, float] = {}
        if prefetcher is not None:
            extras["prefetcher_storage_kb"] = prefetcher.storage_kb()
        if self.hit_levels is not None:
            extras["suf_storage_kb"] = self.hit_levels.storage_bits() \
                / 8 / 1024
        if self.delay_policy is not None:
            extras["delayed_loads"] = self.delay_policy.stats.delayed_loads
            extras["avg_delay_cycles"] = \
                self.delay_policy.stats.average_delay()
        if hierarchy.gm is not None:
            extras["gm_ordering_drops"] = hierarchy.gm.ordering_drops
        return SimResult(
            label=self.label,
            trace_name=trace.name,
            committed=stats.committed_instructions,
            cycles=stats.cycles,
            ipc=stats.ipc(),
            core=stats,
            l1d=hierarchy.l1d.stats,
            l2=hierarchy.l2.stats,
            llc=hierarchy.llc.stats,
            gm=hierarchy.gm_stats if self.secure else None,
            dram=hierarchy.dram.stats,
            tlb=self.tlb.stats,
            classification=classification,
            prefetcher_name=prefetcher.name if prefetcher else "none",
            train_level=prefetcher.train_level if prefetcher else 0,
            train_mode=self.train_mode,
            secure=self.secure,
            suf=self.suf,
            extras=extras,
            timeseries=list(self.sampler.records)
            if self.sampler is not None else None,
        )
