"""Single-core system: core + hierarchy + prefetcher + contribution glue.

:class:`System` wires the Table II core model, a (secure or non-secure)
memory hierarchy, one data prefetcher in a chosen training mode, and the
paper's mechanisms (SUF hit-level queue, TSB's X-LQ, the Fig. 6 miss
classifier).  :meth:`System.run` replays a trace and returns a
:class:`SimResult` with every statistic the paper's figures need.

Event ordering: the loop processes instructions in program order.  Demand
accesses happen at dispatch time and commit actions are queued by retire
time; both streams are monotone, so draining the commit queue up to each new
dispatch time yields a globally time-ordered event sequence -- cache, GM,
MSHR, and DRAM contention are therefore seen in the right order by both the
speculative and the commit paths.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..core.classification import MissClassifier
from ..core.suf import HitLevelQueue, suf_decide
from ..core.xlq import XLQ
from ..obs import EventTrace, IntervalSampler, MetricRegistry, ObsConfig
from ..prefetchers.base import (MODE_ON_ACCESS, MODE_ON_COMMIT, Prefetcher,
                                TrainingEvent)
from ..workloads.trace import (BLOCK_SHIFT, FLAG_BRANCH, FLAG_LOAD,
                               FLAG_MISPREDICT, FLAG_STORE, FLAG_WRONG_PATH,
                               Trace)
from .cpu import CoreModel
from .delay import DelayOnMissPolicy
from .hierarchy import MemoryHierarchy
from .params import SystemParams, baseline
from .stats import (CacheStats, CoreStats, DRAMStats, GhostMinionStats)
from .tlb import TLBHierarchy, TLBStats


@dataclass
class SimResult:
    """Everything measured by one simulation run."""

    label: str
    trace_name: str
    committed: int
    cycles: int
    ipc: float
    core: CoreStats
    l1d: CacheStats
    l2: CacheStats
    llc: CacheStats
    gm: Optional[GhostMinionStats]
    dram: DRAMStats
    tlb: Optional[TLBStats]
    classification: Optional[Dict[str, int]]
    prefetcher_name: str
    train_level: int
    train_mode: str
    secure: bool
    suf: bool
    extras: Dict[str, float] = field(default_factory=dict)
    #: Interval time-series records (``obs.sample_interval > 0`` only).
    timeseries: Optional[List[Dict[str, float]]] = None

    def kilo_instructions(self) -> float:
        return self.committed / 1000.0

    def apki(self, level_stats: CacheStats) -> float:
        ki = self.kilo_instructions()
        return level_stats.total_accesses() / ki if ki else 0.0

    def mpki(self, level_stats: CacheStats) -> float:
        ki = self.kilo_instructions()
        return level_stats.demand_misses() / ki if ki else 0.0


class System:
    """One core and its memory system, in one of the paper's configurations.

    Parameters
    ----------
    params:
        Hardware configuration (defaults to Table II).
    secure:
        Use the GhostMinion secure cache system.
    suf:
        Enable the Secure Update Filter (requires ``secure``).
    prefetcher:
        A :class:`Prefetcher` instance, or ``None``.  TSB instances (with a
        ``requires_xlq`` attribute) automatically get X-LQ-sourced training
        events.
    train_mode:
        ``"on-access"`` or ``"on-commit"``.
    shadow:
        Optional on-access shadow prefetcher enabling the Fig. 6 miss
        taxonomy.  Pass a *fresh* instance of the same prefetcher type.
    classify:
        Collect the miss taxonomy even without a shadow (late/uncovered
        only).
    """

    def __init__(self, params: Optional[SystemParams] = None, *,
                 secure: bool = False, suf: bool = False,
                 delay_mitigation: bool = False,
                 prefetcher: Optional[Prefetcher] = None,
                 train_mode: str = MODE_ON_ACCESS,
                 shadow: Optional[Prefetcher] = None,
                 classify: bool = False,
                 shared_llc=None, shared_dram=None,
                 obs: Optional[ObsConfig] = None,
                 label: Optional[str] = None) -> None:
        if params is None:
            params = baseline()
        if train_mode not in (MODE_ON_ACCESS, MODE_ON_COMMIT):
            raise ValueError(f"unknown train mode {train_mode!r}")
        if suf and not secure:
            raise ValueError("SUF requires the secure cache system")
        if delay_mitigation and secure:
            raise ValueError("pick one mitigation: GhostMinion (secure) "
                             "or delay-on-miss (delay_mitigation)")
        self.params = params
        self.secure = secure
        self.suf = suf
        self.delay_policy = DelayOnMissPolicy() if delay_mitigation \
            else None
        self.prefetcher = prefetcher
        self.train_mode = train_mode

        self.hierarchy = MemoryHierarchy(
            params, secure=secure,
            commit_filter=suf_decide if suf else None,
            shared_llc=shared_llc, shared_dram=shared_dram)
        self.core = CoreModel(params.core)
        self.core_stats = CoreStats()
        self.tlb = TLBHierarchy(params.tlb)

        #: SUF's LQ-side hit-level storage (step 1 of Fig. 7).
        self.hit_levels = HitLevelQueue(params.core.lq_entries,
                                        params.l1d.blocks) if suf else None
        #: TSB's X-LQ: instantiated when the prefetcher asks for it.
        self.use_xlq = bool(getattr(prefetcher, "requires_xlq", False))
        self.xlq: Optional[XLQ] = getattr(prefetcher, "xlq", None) \
            if self.use_xlq else None
        if self.use_xlq and self.xlq is None:
            self.xlq = XLQ(params.core.lq_entries)

        self.classifier = MissClassifier(
            shadow, commit_mode=(train_mode == MODE_ON_COMMIT)) \
            if (shadow is not None or classify) and prefetcher is not None \
            else None
        #: TS wrappers expose ``note_demand`` for lateness feedback.
        self._ts_feedback = hasattr(prefetcher, "note_demand")

        #: Observability: interval sampler and event trace, both ``None``
        #: when disabled so the hot loop pays a single attribute check.
        self.obs = obs if obs is not None else ObsConfig()
        self.sampler = IntervalSampler(self.obs.sample_interval) \
            if self.obs.sample_interval else None
        self.events = EventTrace(self.obs.trace_capacity) \
            if self.obs.trace_events else None
        if self.events is not None:
            self.hierarchy.attach_events(self.events)

        self.label = label if label is not None else self._default_label()

        #: Queued commit actions: (retire_time, is_load, payload).
        self._commit_q: Deque[Tuple] = deque()
        self._pending_redirect = 0
        self._seq = 0
        self._warmup_cycle = 0

    def _default_label(self) -> str:
        pf = self.prefetcher.name if self.prefetcher else "no-pref"
        if self.secure:
            system = "secure"
        elif self.delay_policy is not None:
            system = "delay"
        else:
            system = "non-secure"
        parts = [pf, self.train_mode, system]
        if self.suf:
            parts.append("suf")
        return "/".join(parts)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, trace: Trace, warmup: float = 0.2) -> SimResult:
        """Replay ``trace``; measure everything after the warm-up fraction.

        ``warmup`` is the fraction of committed instructions used to warm
        caches and predictor tables before statistics are reset.
        """
        for _ in self.stepper(trace, warmup, chunk=0):
            pass
        return self.finalize(trace)

    def stepper(self, trace: Trace, warmup: float = 0.2,
                chunk: int = 32):
        """Incrementally replay ``trace``, yielding every ``chunk``
        committed-path instructions (``chunk=0`` never yields).

        The multi-core driver interleaves several systems' steppers by
        time; :meth:`finalize` must be called after exhaustion.
        """
        warmup_target = int(trace.committed_count * warmup)
        warmed = warmup_target == 0
        committed = 0
        since_yield = 0

        core = self.core
        stats = self.core_stats
        sampler = self.sampler
        issue_latency = self.params.core.load_issue_latency
        alu_latency = self.params.core.alu_latency
        penalty = self.params.core.mispredict_penalty

        for ip, vaddr, flags in trace.records:
            self._seq += 1
            wrong = flags & FLAG_WRONG_PATH
            if not wrong and self._pending_redirect:
                core.redirect(self._pending_redirect)
                self._pending_redirect = 0
            t_disp = core.dispatch(bool(wrong))
            if self._commit_q and self._commit_q[0][0] <= t_disp:
                self._drain_commits(t_disp)

            if flags & FLAG_LOAD:
                self._execute_load(ip, vaddr >> BLOCK_SHIFT,
                                   t_disp + issue_latency, t_disp, wrong)
                if wrong:
                    stats.wrong_path_loads += 1
                    continue
                stats.committed_loads += 1
            elif flags & FLAG_STORE:
                if wrong:
                    continue
                t_ret = core.retire(t_disp + alu_latency, t_disp)
                self._commit_q.append((t_ret, False, vaddr >> BLOCK_SHIFT))
                stats.committed_stores += 1
            else:
                if wrong:
                    continue
                completion = t_disp + alu_latency
                if flags & FLAG_BRANCH:
                    if self.delay_policy is not None:
                        completion = self.delay_policy.note_branch(
                            completion)
                    if flags & FLAG_MISPREDICT:
                        self._pending_redirect = completion + penalty
                        stats.branch_mispredicts += 1
                core.retire(completion, t_disp)

            committed += 1
            stats.committed_instructions += 1
            if not warmed and committed >= warmup_target:
                warmed = True
                self._reset_measurement()
            elif sampler is not None \
                    and stats.committed_instructions >= sampler.next_at:
                sampler.sample(self)
            if chunk:
                since_yield += 1
                if since_yield >= chunk:
                    since_yield = 0
                    yield

    def finalize(self, trace: Trace) -> SimResult:
        """Complete the run started by :meth:`stepper`; return results."""
        self._drain_commits(None)
        if self.classifier is not None:
            self.classifier.finalize()
        self.core_stats.cycles = max(
            self.core.final_retire - self._warmup_cycle, 1)
        if self.sampler is not None:
            self.sampler.flush(self)
        return self._build_result(trace)

    def measurement_cycle(self) -> int:
        """Cycles elapsed since the warm-up reset (the measured clock)."""
        return self.core.final_retire - self._warmup_cycle

    def metrics(self) -> MetricRegistry:
        """A typed registry over every live stats structure.

        Reads are bound to the stats objects, so one registry built up
        front observes the whole run; snapshots taken mid-run see current
        values.
        """
        registry = MetricRegistry()
        registry.register_struct("core", self.core_stats)
        hierarchy = self.hierarchy
        for prefix, level in (("l1d", hierarchy.l1d), ("l2", hierarchy.l2),
                              ("llc", hierarchy.llc)):
            registry.register_struct(prefix, level.stats)
        if self.secure:
            registry.register_struct("gm", hierarchy.gm_stats)
        registry.register_struct("dram", hierarchy.dram.stats)
        registry.register_struct("tlb", self.tlb.stats)
        registry.gauge("core.ipc", self.core_stats.ipc,
                       description="committed instructions per cycle")
        registry.gauge("dram.row_hit_rate",
                       hierarchy.dram.stats.row_hit_rate,
                       description="row-buffer hit fraction")
        for prefix, level in (("l1d", hierarchy.l1d), ("l2", hierarchy.l2),
                              ("llc", hierarchy.llc)):
            registry.gauge(f"{prefix}.prefetch_accuracy",
                           level.stats.prefetch_accuracy,
                           description="useful / resolved prefetches")
        if self.secure:
            registry.gauge("gm.suf_accuracy", hierarchy.gm_stats.suf_accuracy,
                           description="correct / decided SUF filterings")
        return registry

    # ------------------------------------------------------------------
    # loads
    # ------------------------------------------------------------------

    def _execute_load(self, ip: int, block: int, issue_time: int,
                      dispatch_time: int, wrong: bool) -> None:
        hierarchy = self.hierarchy
        core = self.core
        l1_stats = hierarchy.l1d.stats
        l2_stats = hierarchy.l2.stats

        issue_time = core.lq_allocate(issue_time)
        # Address translation precedes the data-cache access; TLB misses
        # push the access later.
        issue_time += self.tlb.translate_block(block)
        if self.delay_policy is not None:
            l1d_hit = hierarchy.l1d.contains(block, issue_time)
            if wrong and not l1d_hit:
                # Delay-on-miss: a wrong-path miss never clears the branch
                # horizon, so its request is never sent -- squashed.
                core.lq_complete(issue_time + 1)
                return
            issue_time = self.delay_policy.issue_time(issue_time, l1d_hit)
        merged1_pre = l1_stats.demand_merged_into_prefetch
        useful1_pre = l1_stats.prefetches_useful
        merged2_pre = l2_stats.demand_merged_into_prefetch
        useful2_pre = l2_stats.prefetches_useful

        result = hierarchy.demand_load(block, issue_time, self._seq,
                                       wrong_path=bool(wrong))
        slot = core.lq_complete(result.completion)

        late_l1 = l1_stats.demand_merged_into_prefetch > merged1_pre
        useful_l1 = l1_stats.prefetches_useful > useful1_pre
        late_l2 = l2_stats.demand_merged_into_prefetch > merged2_pre
        useful_l2 = l2_stats.prefetches_useful > useful2_pre
        miss_l1 = result.hit_level >= 1
        miss_l2 = result.hit_level >= 2

        if self.hit_levels is not None and not wrong:
            self.hit_levels.record(slot, result.hit_level)
        if self.xlq is not None and not wrong:
            if miss_l1 and not result.gm_hit:
                self.xlq.record_miss(slot, issue_time)
                self.xlq.record_fill(slot, result.fetch_latency)
            elif useful_l1:
                line = hierarchy.l1d.lookup(block)
                line_latency = line.latency if line is not None \
                    else result.fetch_latency
                self.xlq.record_prefetch_hit(slot, issue_time, line_latency)

        prefetcher = self.prefetcher
        if prefetcher is not None:
            event = TrainingEvent(
                ip=ip, block=block, hit=result.hit_level == 0,
                cycle=issue_time, access_cycle=issue_time,
                fetch_latency=result.fetch_latency,
                hit_level=result.hit_level,
                prefetch_hit=useful_l1 if prefetcher.train_level == 0
                else useful_l2)

            classifier = self.classifier
            if classifier is not None:
                # A late prefetch may be merged at either level (L1-fill
                # requests are demoted to the L2 under MSHR pressure).
                late_any = late_l1 or late_l2
                if prefetcher.train_level == 0 or miss_l1:
                    classifier.on_access(event)
                if prefetcher.train_level == 0 and miss_l1:
                    classifier.classify_miss(block, issue_time, late_any)
                elif prefetcher.train_level == 1 and miss_l2:
                    classifier.classify_miss(block, issue_time, late_any)

            if self.train_mode == MODE_ON_ACCESS:
                if prefetcher.train_level == 0 or miss_l1:
                    self._issue(prefetcher.train(event), issue_time)
                if self._ts_feedback and not wrong:
                    if prefetcher.train_level == 0:
                        prefetcher.note_demand(miss_l1, late_l1, useful_l1)
                    else:
                        prefetcher.note_demand(miss_l2, late_l2, useful_l2)

        if wrong:
            return
        if self.delay_policy is not None:
            self.delay_policy.note_load_completion(result.completion)

        meta = (miss_l1, miss_l2, late_l1, late_l2, useful_l1, useful_l2)
        t_ret = core.retire(result.completion, dispatch_time)
        self._commit_q.append(
            (t_ret, True,
             (ip, block, result.hit_level, issue_time,
              result.fetch_latency, slot, meta)))

    # ------------------------------------------------------------------
    # commit stage
    # ------------------------------------------------------------------

    def _drain_commits(self, until: Optional[int]) -> None:
        queue = self._commit_q
        hierarchy = self.hierarchy
        while queue and (until is None or queue[0][0] <= until):
            t_ret, is_load, payload = queue.popleft()
            if not is_load:
                hierarchy.demand_store(payload, t_ret)
                continue
            ip, block, hit_level, issue_time, fetch_latency, slot, meta = \
                payload
            recorded_level = self.hit_levels.read(slot) \
                if self.hit_levels is not None else hit_level
            update_latency = hierarchy.commit_load(block, t_ret,
                                                   recorded_level)
            prefetcher = self.prefetcher
            if prefetcher is None or self.train_mode != MODE_ON_COMMIT:
                continue

            (miss_l1, miss_l2, late_l1, late_l2,
             useful_l1, useful_l2) = meta

            event = self._commit_event(
                ip, block, hit_level, t_ret, update_latency, slot,
                useful_l1 if prefetcher.train_level == 0 else useful_l2)
            if event is not None:
                if prefetcher.train_level == 0 or hit_level >= 1:
                    self._issue(prefetcher.train(event), t_ret)
            if self._ts_feedback:
                if prefetcher.train_level == 0:
                    prefetcher.note_demand(miss_l1, late_l1, useful_l1)
                else:
                    prefetcher.note_demand(miss_l2, late_l2, useful_l2)

    def _commit_event(self, ip: int, block: int, hit_level: int,
                      commit_time: int, update_latency: int, slot: int,
                      prefetch_hit: bool) -> Optional[TrainingEvent]:
        """Build the training event the commit-stage prefetcher sees.

        Naive on-commit training observes commit-ordered timestamps and the
        on-commit update latency (the misleading value of Section V-B).
        With the X-LQ (TSB), the preserved access time and GM fetch latency
        are used instead.
        """
        if self.use_xlq:
            entry = self.xlq.read(slot, commit_time)
            if entry is None:
                # Regular L1D hit: no training action (Section V-C).
                return None
            return TrainingEvent(
                ip=ip, block=block, hit=hit_level == 0, cycle=commit_time,
                access_cycle=entry.access_cycle,
                fetch_latency=entry.fetch_latency, hit_level=hit_level,
                prefetch_hit=entry.prefetch_hit)
        return TrainingEvent(
            ip=ip, block=block, hit=hit_level == 0, cycle=commit_time,
            access_cycle=commit_time,
            fetch_latency=max(update_latency, 1), hit_level=hit_level,
            prefetch_hit=prefetch_hit)

    def _issue(self, requests, time: int) -> None:
        hierarchy = self.hierarchy
        classifier = self.classifier
        for request in requests:
            if classifier is not None:
                # Log the *trigger*, issued or not: the Fig. 6 commit-late
                # definition asks when the prefetcher triggered the line,
                # even if the request was redundant by then.
                classifier.on_real_prefetch(request.block, time)
            hierarchy.issue_prefetch(request.block, time,
                                     request.fill_level)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------

    def _reset_measurement(self) -> None:
        self.hierarchy.reset_stats()
        self.core_stats.reset()
        self.tlb.reset_stats()
        if self.delay_policy is not None:
            self.delay_policy.reset_stats()
        if self.classifier is not None:
            self.classifier.resolve(self.core.final_retire)
            for category in self.classifier.counts:
                self.classifier.counts[category] = 0
        self._warmup_cycle = self.core.final_retire
        if self.sampler is not None:
            self.sampler.restart(self)

    def _build_result(self, trace: Trace) -> SimResult:
        stats = self.core_stats
        hierarchy = self.hierarchy
        classification = dict(self.classifier.counts) \
            if self.classifier is not None else None
        prefetcher = self.prefetcher
        extras: Dict[str, float] = {}
        if prefetcher is not None:
            extras["prefetcher_storage_kb"] = prefetcher.storage_kb()
        if self.hit_levels is not None:
            extras["suf_storage_kb"] = self.hit_levels.storage_bits() \
                / 8 / 1024
        if self.delay_policy is not None:
            extras["delayed_loads"] = self.delay_policy.stats.delayed_loads
            extras["avg_delay_cycles"] = \
                self.delay_policy.stats.average_delay()
        if hierarchy.gm is not None:
            extras["gm_ordering_drops"] = hierarchy.gm.ordering_drops
        return SimResult(
            label=self.label,
            trace_name=trace.name,
            committed=stats.committed_instructions,
            cycles=stats.cycles,
            ipc=stats.ipc(),
            core=stats,
            l1d=hierarchy.l1d.stats,
            l2=hierarchy.l2.stats,
            llc=hierarchy.llc.stats,
            gm=hierarchy.gm_stats if self.secure else None,
            dram=hierarchy.dram.stats,
            tlb=self.tlb.stats,
            classification=classification,
            prefetcher_name=prefetcher.name if prefetcher else "none",
            train_level=prefetcher.train_level if prefetcher else 0,
            train_mode=self.train_mode,
            secure=self.secure,
            suf=self.suf,
            extras=extras,
            timeseries=list(self.sampler.records)
            if self.sampler is not None else None,
        )
