"""Simulation substrate: core, caches, DRAM, GhostMinion, systems."""

from .cache import (CacheLevel, LEVEL_DRAM, LEVEL_L1D, LEVEL_L2, LEVEL_LLC,
                    LEVEL_NAMES, MemoryBackend)
from .cpu import CoreModel
from .delay import DelayOnMissPolicy, DelayStats
from .dram import DRAMChannel
from .ghostminion import GhostMinionCache
from .hierarchy import LoadResult, MemoryHierarchy
from .params import (CacheParams, CoreParams, DRAMParams, GhostMinionParams,
                     SystemParams, baseline, validate)
from .stats import (CacheStats, CoreStats, DRAMStats, GhostMinionStats,
                    REQ_COMMIT, REQ_LOAD, REQ_PREFETCH, REQ_STORE,
                    REQ_WRITEBACK, REQUEST_TYPES)
from .system import SimResult, System
from .tlb import TLBHierarchy, TLBParams, TLBStats

__all__ = [
    "CacheLevel", "LEVEL_DRAM", "LEVEL_L1D", "LEVEL_L2", "LEVEL_LLC",
    "LEVEL_NAMES", "MemoryBackend", "CoreModel", "DRAMChannel",
    "GhostMinionCache", "LoadResult", "MemoryHierarchy",
    "CacheParams", "CoreParams", "DRAMParams", "GhostMinionParams",
    "SystemParams", "baseline", "validate",
    "CacheStats", "CoreStats", "DRAMStats", "GhostMinionStats",
    "REQ_COMMIT", "REQ_LOAD", "REQ_PREFETCH", "REQ_STORE", "REQ_WRITEBACK",
    "REQUEST_TYPES", "SimResult", "System",
    "DelayOnMissPolicy", "DelayStats",
    "TLBHierarchy", "TLBParams", "TLBStats",
]
