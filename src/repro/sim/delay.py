"""Delay-based speculation mitigation (the other family in Table I).

Invisible speculation (GhostMinion) is one of the two mitigation classes
the paper surveys; the other *delays* secret-dependent transmission until
it is safe (NDA, DoM, STT).  This module implements a conservative
**delay-on-miss** policy in the spirit of DoM/NDA:

* speculative loads that *hit* in the L1D proceed (a hit's timing is
  assumed already observable; DoM additionally freezes replacement state,
  which our probe-style access models);
* speculative loads that *miss* may not send a request into the memory
  hierarchy until the load is no longer speculative -- approximated as the
  moment the retire frontier reaches it (it is then the oldest
  instruction, hence bound to commit).

This is the "High performance slowdown" row of Table I, included so the
reproduction can *measure* the classification the paper only tabulates.
Wrong-path loads never get to issue their misses at all (they are squashed
before reaching the frontier), which is exactly the security argument.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DelayStats:
    """Bookkeeping for the delay-on-miss policy."""

    delayed_loads: int = 0
    delay_cycles: int = 0
    hits_not_delayed: int = 0

    def average_delay(self) -> float:
        if not self.delayed_loads:
            return 0.0
        return self.delay_cycles / self.delayed_loads

    def reset(self) -> None:
        self.delayed_loads = 0
        self.delay_cycles = 0
        self.hits_not_delayed = 0


class DelayOnMissPolicy:
    """Computes when a speculative miss may issue.

    The safety horizon is control speculation (NDA-BR style): a load's
    miss may issue once every older branch has resolved.  Branches are
    modelled as depending on the most recent load's value (the common
    pattern), so a branch behind a cache miss resolves late and delays
    every younger miss -- the mechanism behind delay-based schemes'
    slowdown on memory-bound code.
    """

    def __init__(self) -> None:
        self.stats = DelayStats()
        #: Completion time of the most recent committed load (what the
        #: next branch is assumed to test).
        self._last_load_completion = 0
        #: Cycle by which every older branch has resolved.
        self._safe_after = 0

    def note_branch(self, execute_time: int) -> int:
        """A branch executed; returns its (dependency-aware) resolution."""
        resolve = max(execute_time, self._last_load_completion)
        if resolve > self._safe_after:
            self._safe_after = resolve
        return resolve

    def note_load_completion(self, completion: int) -> None:
        if completion > self._last_load_completion:
            self._last_load_completion = completion

    def issue_time(self, access_time: int, l1d_hit: bool) -> int:
        """Return the cycle at which the load may access the hierarchy."""
        if l1d_hit:
            self.stats.hits_not_delayed += 1
            return access_time
        if self._safe_after > access_time:
            self.stats.delayed_loads += 1
            self.stats.delay_cycles += self._safe_after - access_time
            return self._safe_after
        return access_time

    def reset_stats(self) -> None:
        self.stats.reset()
