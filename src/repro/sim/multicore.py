"""Multi-core simulation: private L1D/L2 per core, shared LLC and DRAM.

The paper's 4-core experiments (Section VII-B, Fig. 15) run heterogeneous
mixes with one LLC bank per core and one DRAM channel per four cores.  Here
each core gets its own :class:`~repro.sim.system.System` (private L1D/L2,
private GM in secure mode) in front of a shared LLC and shared DRAM channel.

Cores are interleaved by *current time*: at each arbitration step the core
whose next instruction dispatches earliest executes a **quantum** of
committed instructions, so requests reach the shared levels in
approximately global time order and contention between cores is modelled
the same way as contention within a core.

The quantum is the interleave granularity, with an explicit fairness
bound: a selected core runs at most ``quantum`` committed-path
instructions before control returns to the earliest-core scan, so any
core's clock can lead the globally-earliest core by at most the cycles
one quantum consumes.  Within that lead, shared-LLC/DRAM requests are
charged slightly out of global time order -- exactly the out-of-order
charging the functional port-bucket/cursor timing model is built to
absorb (single-core commit drains already charge this way).  Scheduling
stays fully deterministic for any quantum: the arbitration scan is a
strict-< first-of-ties pass in fixed core order, independent of worker
count or job order.

Weighted speedup follows the paper: ``WS = sum_i IPC_shared_i /
IPC_alone_i``, with the alone-IPC measured on the same configuration but a
private memory system.
"""

from __future__ import annotations

import gc

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..workloads.trace import Trace
from .cache import CacheLevel, LEVEL_LLC, MemoryBackend
from .dram import DRAMChannel
from .params import SystemParams, baseline
from .system import SimResult, System

#: Default interleave quantum (committed instructions per scheduling
#: turn).  Coarsened from the original 32 by the PR10 modeled-time pass:
#: at 64 the scheduler scan runs half as often while the fairness lead
#: stays well under a DRAM round trip for the paper's workloads; the
#: figure-level tolerance check (``repro figcheck``) pins the resulting
#: drift to within epsilon of the fine-grained schedule.
DEFAULT_QUANTUM = 64


@dataclass
class MulticoreResult:
    """Results of one multi-core mix run.

    ``extras`` carries executor-side measurements (wall times, instr/s,
    worker peak RSS) when the mix ran as a sharded pool job, mirroring
    ``SimResult.extras``.
    """

    per_core: List[SimResult]
    mix_name: str
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def committed(self) -> int:
        return sum(result.committed for result in self.per_core)

    def ipc(self, core: int) -> float:
        return self.per_core[core].ipc

    def weighted_speedup(self, alone_ipcs: Sequence[float]) -> float:
        """sum_i IPC_shared_i / IPC_alone_i over the mix's cores."""
        total = 0.0
        for result, alone in zip(self.per_core, alone_ipcs):
            if alone > 0:
                total += result.ipc / alone
        return total


class MulticoreSystem:
    """N cores sharing an LLC and a DRAM channel.

    ``system_factory`` builds one per-core :class:`System` given the shared
    LLC and DRAM -- use it to select secure mode, prefetcher, SUF, etc.  A
    fresh factory call is made per core so prefetcher state is private.
    """

    def __init__(self, cores: int = 4,
                 params: Optional[SystemParams] = None,
                 system_factory: Optional[Callable[..., System]] = None,
                 quantum: Optional[int] = None) -> None:
        if params is None:
            params = baseline()
        if quantum is None:
            quantum = DEFAULT_QUANTUM
        elif quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {quantum!r}")
        self.params = params
        self.cores = cores
        self.quantum = quantum

        # One LLC bank per core in the paper; modelled as one shared cache
        # with aggregated capacity and per-bank port/MSHR counts scaled.
        llc_params = params.llc
        shared_llc_params = type(llc_params)(
            name="LLC", size_kb=llc_params.size_kb * cores,
            ways=llc_params.ways, latency=llc_params.latency,
            mshrs=llc_params.mshrs * cores,
            ports=llc_params.ports * cores,
            line_size=llc_params.line_size,
            pq_entries=llc_params.pq_entries * cores)
        self.dram = DRAMChannel(params.dram)
        self.llc = CacheLevel(shared_llc_params, LEVEL_LLC,
                              MemoryBackend(self.dram))

        if system_factory is None:
            system_factory = System
        self.systems: List[System] = [
            system_factory(params=params, shared_llc=self.llc,
                           shared_dram=self.dram)
            for _ in range(cores)]

    def run(self, mix: Sequence[Trace], warmup: float = 0.2
            ) -> MulticoreResult:
        """Run one trace per core, interleaved in global time order."""
        if len(mix) != self.cores:
            raise ValueError(
                f"mix has {len(mix)} traces for {self.cores} cores")
        runners = [
            _CoreRunner(system, trace, warmup, self.quantum)
            for system, trace in zip(self.systems, mix)]
        active = list(runners)
        # The run loop allocates only short-lived objects (events, stat
        # tuples) that never form cycles; pausing the cyclic collector
        # for the duration removes its periodic scans from the hot loop.
        # Refcounting still frees everything promptly.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            while active:
                # Advance the core whose next instruction dispatches
                # earliest.  Manual strict-< scan instead of
                # min(key=lambda ...): no closure allocation per step,
                # same first-of-ties pick, and the time read skips the
                # current_time() call frame.
                best = active[0]
                best_time = best.system.core.current_cycle
                for runner in active:
                    t = runner.system.core.current_cycle
                    if t < best_time:
                        best_time = t
                        best = runner
                if not best.step():
                    active.remove(best)
        finally:
            if gc_was_enabled:
                gc.enable()
        results = [runner.finish() for runner in runners]
        name = "+".join(trace.name for trace in mix)
        return MulticoreResult(per_core=results, mix_name=name)


class _CoreRunner:
    """Drives one core's :meth:`System.stepper` in interleavable chunks."""

    def __init__(self, system: System, trace: Trace, warmup: float,
                 quantum: int = DEFAULT_QUANTUM) -> None:
        self.system = system
        self.trace = trace
        self.quantum = quantum
        self._gen = system.stepper(trace, warmup, chunk=quantum)
        self._done = False
        self._result: Optional[SimResult] = None

    def current_time(self) -> int:
        return self.system.core.current_cycle

    def step(self) -> bool:
        """Execute a small chunk; False when the trace is exhausted."""
        if self._done:
            return False
        try:
            next(self._gen)
            return True
        except StopIteration:
            self._done = True
            return False

    def finish(self) -> SimResult:
        if self._result is None:
            self._result = self.system.finalize(self.trace)
        return self._result


def run_mix(mix: Sequence[Trace], *, cores: int = 4,
            params: Optional[SystemParams] = None,
            warmup: float = 0.2, quantum: Optional[int] = None,
            **system_kwargs) -> MulticoreResult:
    """Convenience wrapper: run one mix with a uniform per-core config.

    ``system_kwargs`` accepts the same options as :class:`System`
    (``secure``, ``suf``, ``train_mode``, ...).  ``prefetcher_factory``
    (callable) builds a private prefetcher per core.  ``quantum``
    overrides the interleave granularity (see module docstring).
    """
    prefetcher_factory = system_kwargs.pop("prefetcher_factory", None)

    def factory(**kw):
        pf = prefetcher_factory() if prefetcher_factory else None
        return System(prefetcher=pf, **system_kwargs, **kw)

    mc = MulticoreSystem(cores=cores, params=params, system_factory=factory,
                         quantum=quantum)
    return mc.run(mix, warmup=warmup)


def alone_ipcs(mix: Sequence[Trace], *,
               params: Optional[SystemParams] = None,
               warmup: float = 0.2, cache: Optional[Dict] = None,
               **system_kwargs) -> List[float]:
    """Per-trace IPC on a private memory system (for weighted speedup).

    ``cache`` (a dict) memoizes alone runs across mixes keyed by
    (trace name, config label) since mixes repeat traces.
    """
    prefetcher_factory = system_kwargs.pop("prefetcher_factory", None)
    ipcs = []
    for trace in mix:
        key = None
        if cache is not None:
            key = (trace.name, tuple(sorted(system_kwargs.items())))
            if key in cache:
                ipcs.append(cache[key])
                continue
        pf = prefetcher_factory() if prefetcher_factory else None
        system = System(params=params, prefetcher=pf, **system_kwargs)
        ipc = system.run(trace, warmup=warmup).ipc
        if cache is not None:
            cache[key] = ipc
        ipcs.append(ipc)
    return ipcs
