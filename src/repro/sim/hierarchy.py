"""Memory-hierarchy assembly: L1D/L2/LLC/DRAM plus the GhostMinion paths.

Two operating modes:

* **non-secure** -- a conventional hierarchy: demand loads fill every level
  on the return path, wrong-path (transient) loads pollute caches freely.
* **secure (GhostMinion)** -- speculative loads probe the GM and L1D in
  parallel; on a GM miss the hierarchy is walked *without* updating any
  state, and the response fills only the GM.  On commit, the data moves
  GM -> L1D (an *on-commit write*) or is *re-fetched* into the hierarchy if
  the GM line was evicted, exactly the flows of Fig. 2.  The Secure Update
  Filter (Section IV) optionally drops or truncates these commit-time
  updates based on the 2-bit hit level recorded at access time.

The CPU model calls :meth:`MemoryHierarchy.demand_load` at a load's access
time and, in secure mode, :meth:`MemoryHierarchy.commit_load` at its commit
time with the hit level the load recorded in its load-queue entry.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import NamedTuple

from .cache import (CacheLevel, LEVEL_L1D, LEVEL_L2, LEVEL_LLC,
                    MemoryBackend, ScrambledBackend)
from .flatwalk import make_flat_descent, make_refetch_batch
from .dram import DRAMChannel
from .ghostminion import GhostMinionCache
from .params import SystemParams
from .stats import GhostMinionStats, REQ_COMMIT, REQ_LOAD, REQ_STORE


class LoadResult(NamedTuple):
    """Outcome of one demand load."""

    completion: int
    #: Level that provided the data (SUF hit level; GM hits report L1D/0).
    hit_level: int
    #: Whether the GM (not L1D) provided the data (secure mode only).
    gm_hit: bool
    #: Cycles from access to data availability (the *fetch latency* Berti
    #: and TSB train on).
    fetch_latency: int


class MemoryHierarchy:
    """L1D + L2 + LLC + DRAM, optionally fronted by a GhostMinion GM."""

    def __init__(self, params: SystemParams, *, secure: bool = False,
                 commit_filter=None, shared_llc: CacheLevel = None,
                 shared_dram: DRAMChannel = None,
                 llc_scramble: int = 0) -> None:
        if commit_filter is not None and not secure:
            raise ValueError("SUF only applies to a secure cache system")
        self.params = params
        self.secure = secure
        #: Optional SUF decision function ``hit_level -> decision`` with
        #: ``drop``/``gm_propagate``/``wbb`` fields (``repro.core.suf``).
        #: Injected by the system so the substrate stays contribution-free.
        self.commit_filter = commit_filter

        self.dram = shared_dram if shared_dram is not None \
            else DRAMChannel(params.dram)
        backend = MemoryBackend(self.dram)
        self.llc = shared_llc if shared_llc is not None \
            else CacheLevel(params.llc, LEVEL_LLC, backend)
        #: What the L2 sees below it: the LLC itself, or -- under the
        #: ``rand-llc`` mitigation -- a keyed index-randomization adapter
        #: in front of it (``repro.security.mitigations``).  Sharing a
        #: multicore LLC composes: each core's hierarchy wraps the shared
        #: level with the same seed, so the scramble stays coherent.
        self.llc_front = ScrambledBackend(self.llc, llc_scramble) \
            if llc_scramble else self.llc
        self.l2 = CacheLevel(params.l2, LEVEL_L2, self.llc_front)
        self.l1d = CacheLevel(params.l1d, LEVEL_L1D, self.l2)

        self.gm_stats = GhostMinionStats()
        self.gm = GhostMinionCache(params.gm, self.gm_stats) if secure \
            else None
        # Hot-path hoists (demand_load runs once per load): bound methods
        # of the fixed collaborators and the constants behind a GM hit's
        # latency and the prefetch-demotion threshold.
        self._l1d_access = self.l1d.access
        #: Batched commit re-fetch resolver (see flatwalk); ``None`` when
        #: the chain is scrambled and the drain must re-fetch per block.
        self._refetch_batch = None
        if self.llc_front is self.llc:
            # Plain chain (no index-randomization adapter): install the
            # flattened one-frame descents.  Each is a semantically
            # identical twin of the recursive walk (make_flat_descent);
            # with events attached they defer to the recursive path, so
            # tracing semantics are unchanged.  The shared-LLC case simply
            # rebinds the LLC's descent to an equivalent closure per core.
            self._l1d_access = make_flat_descent(
                (self.l1d, self.l2, self.llc), self.dram)
            self.l1d._descend = self._l1d_access
            self.l2._descend = make_flat_descent(
                (self.l2, self.llc), self.dram)
            self.llc._descend = make_flat_descent((self.llc,), self.dram)
            if secure:
                self._refetch_batch = make_refetch_batch(
                    (self.l1d, self.l2, self.llc), self.dram)
        self._l1d_mshrs = params.l1d.mshrs
        #: Identity-stable alias of the L1D MSHR next-free times (the pool
        #: mutates the list in place); read by the prefetch-demotion check.
        self._l1d_mshr_times = self.l1d._mshrs.times
        self._gm_hit_latency = max(self.gm.latency, params.l1d.latency) \
            if secure else 0
        self._gm_latency = params.gm.latency if secure else 0
        self._l1d_commit_write = self.l1d.commit_write
        self._l1d_contains = self.l1d.contains
        #: The commit filter's contract is a *pure* function of the 2-bit
        #: hit level (repro.core.suf), so its four possible decisions are
        #: memoized lazily instead of re-deriving one per committed load.
        self._filter_memo = {}
        #: Alias of the GM's pending-fill heap (identity is stable: the
        #: GM clears it in place).  Callers peek it to skip apply_until
        #: calls when no pending fill is due yet -- the common case.
        self._gm_heap = self.gm._pending_heap if secure else None
        #: Optional :class:`repro.obs.events.EventTrace` for commit-path
        #: (GM/SUF) events; attached via :meth:`attach_events`.
        self.events = None

    def attach_events(self, events) -> None:
        """Enable structured event tracing on every component.

        Shared levels (a multi-core LLC/DRAM) are attached too: their
        events then interleave all cores' traffic, which is the point.
        """
        self.events = events
        for level in self.levels():
            level.events = events
        if self.gm is not None:
            self.gm.events = events

    # ------------------------------------------------------------------
    # demand path
    # ------------------------------------------------------------------

    def demand_load(self, block: int, time: int, timestamp: int,
                    *, wrong_path: bool = False) -> LoadResult:
        """Execute one load's data access at its (speculative) access time."""
        count_useful = not wrong_path
        if not self.secure:
            completion, served = self._l1d_access(
                block, time, REQ_LOAD, True, True, count_useful)
            return LoadResult(completion, served, False, completion - time)
        return self._speculative_load(block, time, timestamp, count_useful)

    def _speculative_load(self, block: int, time: int, timestamp: int,
                          count_useful: bool) -> LoadResult:
        gm = self.gm
        heap = self._gm_heap
        if heap and heap[0][0] <= time:
            gm.apply_until(time)
        gm_line = gm.lookup(block)
        if gm_line is not None:
            # GM hit (possibly still in flight).  The L1D is probed in
            # parallel but provides nothing and updates nothing.  The GM
            # array itself reads in 1 cycle, but load-to-use still goes
            # through the normal load pipeline, so a GM hit is never faster
            # than an L1D hit.
            self.gm_stats.gm_hits += 1
            self.l1d.probe(block, time, REQ_LOAD)
            completion = max(time + self._gm_hit_latency, gm_line.fill_time)
            return LoadResult(completion, LEVEL_L1D, True, completion - time)

        # GM miss: walk the hierarchy invisibly; fill only the GM.
        self.gm_stats.gm_misses += 1
        completion, served = self._l1d_access(
            block, time, REQ_LOAD, False, False, count_useful)
        fetch_latency = completion - time
        if served != LEVEL_L1D:
            # L1D-provided data takes no GM entry: the L1D already holds the
            # line, so commit will merely re-touch it (the redundant LRU
            # update SUF filters).  Only data from L2/LLC/DRAM -- which the
            # invisible walk did not install anywhere -- parks in the GM
            # awaiting its on-commit write.
            gm.fill(block, completion, timestamp, fetch_latency,
                    not count_useful)
        return LoadResult(completion, served, False, fetch_latency)

    def demand_store(self, block: int, time: int) -> int:
        """Write one committed store into the L1D (at retire time)."""
        completion, _ = self._l1d_access(block, time, REQ_STORE)
        return completion

    # ------------------------------------------------------------------
    # commit path (secure mode)
    # ------------------------------------------------------------------

    def commit_load(self, block: int, time: int, hit_level: int) -> int:
        """Perform GhostMinion's commit-time hierarchy update for a load.

        ``hit_level`` is the 2-bit level recorded in the load-queue entry at
        access time (Fig. 7, step 1).  With a SUF ``commit_filter``
        installed, updates for L1D-provided data are dropped and writeback
        propagation is truncated at the level below the provider (steps
        2-4).

        Returns the latency of the commit-time update -- the (misleading)
        value a naive on-commit Berti observes as its "fetch latency"
        (Section V-B).
        """
        if not self.secure:
            return 0
        stats = self.gm_stats
        heap = self._gm_heap
        if heap and heap[0][0] <= time:
            self.gm.apply_until(time)
        gm_line = self.gm.take(block)

        if self.commit_filter is not None:
            decision = self._filter_memo.get(hit_level)
            if decision is None:
                decision = self._filter_memo[hit_level] = \
                    self.commit_filter(hit_level)
        else:
            decision = None
        if decision is not None and decision.drop:
            stats.commit_drops_suf += 1
            if self._l1d_contains(block):
                stats.suf_correct += 1
            else:
                stats.suf_mispredict += 1
            if self.events is not None:
                self.events.emit("suf_drop", time, block, "SUF")
            return 0

        if gm_line is not None:
            # On-commit write: the line moves GM -> L1D.
            stats.commit_writes += 1
            if self.events is not None:
                self.events.emit("gm_commit_write", time, block, "GM")
            if decision is not None:
                gm_propagate, wbb = decision.gm_propagate, decision.wbb
                self._record_suf_stop(block, hit_level)
            else:
                gm_propagate, wbb = True, True
            self._l1d_commit_write(block, time, gm_propagate, wbb)
            return self._gm_latency

        # The GM line was evicted before commit (or, for L1D-provided
        # data, never existed): re-fetch into the non-speculative
        # hierarchy (Fig. 2, flow 2b).
        stats.commit_refetches += 1
        if hit_level > LEVEL_L1D:
            stats.gm_lost_before_commit += 1
        if self.events is not None:
            self.events.emit("gm_refetch", time, block, "GM")
        completion, _ = self._l1d_access(block, time, REQ_COMMIT)
        return completion - time

    def _record_suf_stop(self, block: int, hit_level: int) -> None:
        """Account a truncated propagation decision and its correctness."""
        stats = self.gm_stats
        if hit_level == LEVEL_L2:
            provider = self.l2
        elif hit_level == LEVEL_LLC:
            provider = self.llc_front
        else:
            return
        stats.wb_stopped_suf += 1
        if provider.contains(block):
            stats.suf_correct += 1
        else:
            stats.suf_mispredict += 1
        if self.events is not None:
            self.events.emit("suf_stop", 0, block, "SUF")

    # ------------------------------------------------------------------
    # prefetch path
    # ------------------------------------------------------------------

    def issue_prefetch(self, block: int, time: int, fill_level: int) -> bool:
        """Issue a prefetch that fills down to ``fill_level`` (0/1/2).

        L1D-destined prefetches are demoted to the L2 when the L1D MSHRs
        are half occupied -- Berti's orchestration rule (Section V-A), which
        keeps prefetch bursts from starving demand misses of MSHRs.  All
        prefetching throttles when the DRAM channel's low-priority queue is
        saturated (they would arrive uselessly late anyway).
        """
        # Inline of dram.backlogged(time) with the default margin -- this
        # runs once per prefetch request, mostly to say "no".
        dram = self.dram
        reference = time + dram._service
        bus_free = dram._bus_free
        if bus_free > reference:
            reference = bus_free
        if dram._bus_free_low - reference > dram._backlog_margin:
            if fill_level <= LEVEL_L1D:
                self.l1d.stats.prefetches_dropped += 1
            elif fill_level == LEVEL_L2:
                self.l2.stats.prefetches_dropped += 1
            else:
                self.llc.stats.prefetches_dropped += 1
            return False
        if fill_level <= LEVEL_L1D:
            # Inline of l1d.mshr_occupancy: the pool list is sorted, so
            # the busy count (next-free strictly after ``time``) is one
            # bisect.
            times = self._l1d_mshr_times
            if 2 * (len(times) - bisect_right(times, time)) \
                    >= self._l1d_mshrs:
                fill_level = LEVEL_L2
            else:
                return self.l1d.issue_prefetch(block, time)
        if fill_level == LEVEL_L2:
            return self.l2.issue_prefetch(block, time)
        return self.llc_front.issue_prefetch(block, time)

    # ------------------------------------------------------------------

    def flush_speculative(self) -> None:
        """Drop all speculative state (domain switch)."""
        if self.gm is not None:
            self.gm.flush()

    def levels(self):
        return (self.l1d, self.l2, self.llc)

    def reset_stats(self) -> None:
        for level in self.levels():
            level.reset_stats()
        self.dram.reset_stats()
        self.gm_stats.reset()
