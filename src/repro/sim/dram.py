"""Open-page DRAM channel model.

Models the timing behaviour that matters to the paper's experiments:

* per-bank row buffers with open-page policy (row hits pay tCAS only, row
  misses pay tRP + tRCD + tCAS);
* per-bank busy time (a bank serves one command sequence at a time);
* a shared data bus with finite bandwidth (64-byte lines at 6400 MT/s);
* a fixed controller queueing latency.

The model is *functional*: ``access`` is called with the cycle at which the
request reaches the controller and returns the cycle at which the line is
delivered.  Requests are expected to arrive in roughly non-decreasing time
order (the simulator processes core events in merged time order), which makes
per-bank and bus next-free bookkeeping accurate enough to reproduce
contention trends.  FR-FCFS is approximated by the open-page row-buffer
policy itself: a burst of same-row requests arriving together all enjoy row
hits.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .params import DRAMParams
from .stats import DRAMStats


class DRAMChannel:
    """One DRAM channel shared by all cores of a chip."""

    def __init__(self, params: DRAMParams, line_size: int = 64) -> None:
        self.params = params
        self.stats = DRAMStats()
        self._line_size = line_size
        #: Row-buffer blocks per row.
        self._blocks_per_row = max(1, params.row_buffer_bytes // line_size)
        #: Open row per bank (-1 = closed / unknown).
        self._open_row = [-1] * params.banks
        #: Cycle at which each bank becomes free for *demand* requests.
        self._bank_free = [0] * params.banks
        #: Backlog horizon for low-priority (prefetch / commit-update /
        #: writeback) requests per bank.  FR-FCFS controllers serve demands
        #: first, so a prefetch backlog delays only other prefetches; both
        #: classes share the banks' real busy time through ``_bank_free``.
        self._bank_free_low = [0] * params.banks
        #: Shared data bus, same two-priority split.
        self._bus_free = 0
        self._bus_free_low = 0
        #: Furthest-scheduled low-priority completion (backpressure signal).
        self._low_horizon = 0
        # Hot-path hoists: ``access`` and ``backlogged`` run once per
        # DRAM-bound request / prefetch issue, so the fixed timing sums and
        # the throttle margin are folded once here instead of re-derived
        # from params on every call.
        self._ctrl_latency = params.controller_latency
        self._t_row_hit = params.t_cas
        self._t_row_miss = params.t_rp + params.t_rcd + params.t_cas
        self._bus_cycles = params.bus_cycles_per_line
        self._banks = params.banks
        #: One uncontended row-miss service (see :meth:`backlogged`).
        self._service = (params.controller_latency + params.t_rp
                         + params.t_rcd + params.t_cas
                         + params.bus_cycles_per_line)
        self._backlog_margin = params.prefetch_backlog_margin
        #: row -> bank memo: the splitmix64 finalizer costs four 64-bit
        #: multiplies/shifts per access, and the set of distinct rows a
        #: workload touches is small (footprint / row size), so a dict
        #: probe wins.  Bounded by the trace footprint; cleared never --
        #: the mapping is pure.
        self._bank_memo: dict = {}

    def low_backlog(self, time: int) -> int:
        """Cycles of low-priority bus backlog beyond the demand bus and
        ``time`` -- the same signal :meth:`backlogged` thresholds, exposed
        raw for the interval sampler and CLI metric dumps."""
        return max(0, self._bus_free_low - max(self._bus_free, time))

    def access(self, block: int, time: int, demand: bool = True) -> int:
        """Serve one 64-byte line request; return the delivery cycle.

        ``demand=False`` marks low-priority traffic (prefetches, commit-time
        hierarchy updates, writebacks): it queues behind both classes but
        never pushes demand requests back.
        """
        row = block // self._blocks_per_row
        bank = self._bank_memo.get(row)
        if bank is None:
            # Hashed bank indexing: plain ``row % banks`` maps GB-aligned
            # arrays (whose rows differ only in high bits) onto one bank and
            # serializes independent streams; real controllers XOR address
            # bits for the same reason.  splitmix64 finalizer for good
            # avalanche.
            h = row & 0xFFFFFFFFFFFFFFFF
            h ^= h >> 33
            h = (h * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
            h ^= h >> 33
            bank = self._bank_memo[row] = h % self._banks

        stats = self.stats
        start = max(time + self._ctrl_latency, self._bank_free[bank])
        if not demand:
            start = max(start, self._bank_free_low[bank])
        if self._open_row[bank] == row:
            ready = start + self._t_row_hit
            stats.row_hits += 1
        else:
            ready = start + self._t_row_miss
            self._open_row[bank] = row
            stats.row_misses += 1
        stats.requests += 1

        if demand:
            # The bank is busy until its data hits the bus.
            self._bank_free[bank] = ready
            bus_start = max(ready, self._bus_free)
            done = bus_start + self._bus_cycles
            self._bus_free = done
        else:
            self._bank_free_low[bank] = ready
            bus_start = max(ready, self._bus_free, self._bus_free_low)
            done = bus_start + self._bus_cycles
            self._bus_free_low = done
        return done

    def access_batch(self, requests: Sequence[Tuple[int, int]],
                     demand: bool = True) -> List[int]:
        """Serve a batch of ``(block, time)`` requests; return completions.

        Produces exactly the completions of calling :meth:`access` once
        per request in order -- the batch form exists to amortize the
        bank-cursor bookkeeping: the per-request fixed timing sums, the
        bank/row lists, the shared bus cursors, and the stats counters
        are bound to locals once for the whole batch and written back
        once at the end, instead of being re-read through ``self`` and
        re-stored per request.  Callers batch naturally time-ordered
        windows (a drained commit window's re-fetches, a prescanned
        access run), which is the same arrival discipline the scalar
        path expects.
        """
        bank_memo = self._bank_memo
        bank_memo_get = bank_memo.get
        blocks_per_row = self._blocks_per_row
        banks = self._banks
        ctrl = self._ctrl_latency
        t_hit = self._t_row_hit
        t_miss = self._t_row_miss
        bus_cycles = self._bus_cycles
        open_row = self._open_row
        bank_free = self._bank_free
        bank_free_low = self._bank_free_low
        bus_free = self._bus_free
        bus_free_low = self._bus_free_low
        row_hits = row_misses = 0
        completions = []
        append = completions.append
        for block, time in requests:
            row = block // blocks_per_row
            bank = bank_memo_get(row)
            if bank is None:
                h = row & 0xFFFFFFFFFFFFFFFF
                h ^= h >> 33
                h = (h * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
                h ^= h >> 33
                bank = bank_memo[row] = h % banks
            start = time + ctrl
            free = bank_free[bank]
            if free > start:
                start = free
            if not demand:
                free = bank_free_low[bank]
                if free > start:
                    start = free
            if open_row[bank] == row:
                ready = start + t_hit
                row_hits += 1
            else:
                ready = start + t_miss
                open_row[bank] = row
                row_misses += 1
            if demand:
                bank_free[bank] = ready
                bus_start = ready if ready > bus_free else bus_free
                bus_free = bus_start + bus_cycles
                append(bus_free)
            else:
                bank_free_low[bank] = ready
                bus_start = ready if ready > bus_free else bus_free
                if bus_free_low > bus_start:
                    bus_start = bus_free_low
                bus_free_low = bus_start + bus_cycles
                append(bus_free_low)
        if demand:
            self._bus_free = bus_free
        else:
            self._bus_free_low = bus_free_low
        stats = self.stats
        stats.row_hits += row_hits
        stats.row_misses += row_misses
        stats.requests += len(completions)
        return completions

    def backlogged(self, time: int, margin: Optional[int] = None) -> bool:
        """True when the low-priority queue is deep enough that further
        prefetches would arrive uselessly late (prefetch throttling).

        The signal is the low-priority bus backlog *beyond* the demand bus
        and current time -- queueing a prefetch inherited from demand
        traffic does not count against prefetching.  Demands that merge
        with an in-flight prefetch inherit its queueing delay, so bounding
        this backlog also bounds the worst late-prefetch penalty a demand
        can see.
        """
        if margin is None:
            margin = self._backlog_margin
        # One uncontended row-miss service: a single in-flight prefetch is
        # not backlog, however idle the channel is.
        reference = max(self._bus_free, time + self._service)
        return self._bus_free_low - reference > margin

    def reset_stats(self) -> None:
        self.stats.reset()
