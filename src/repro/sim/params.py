"""System configuration, mirroring Table II of the paper.

All latencies are in core cycles at 4 GHz (1 cycle = 0.25 ns), so the DRAM
timing parameters of Table II (tRP = tRCD = tCAS = 12.5 ns) become 50 cycles
each.

The defaults model one core of an Intel Sunny-Cove-like machine:

* out-of-order core, 6-issue, 4-retire, 352-entry ROB, 128-entry LQ;
* L1D 48 KB 12-way, 5 cycles, 16 MSHRs, LRU;
* L2 512 KB 8-way, 15 cycles, 32 MSHRs, LRU, non-inclusive;
* LLC one 2 MB 16-way bank per core, 35 cycles, 64 MSHRs, LRU, non-inclusive;
* DRAM: one channel per 4 cores, 6400 MT/s, open-page row buffer.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

from .tlb import TLBParams


@dataclass(frozen=True)
class CoreParams:
    """Out-of-order core parameters (Table II, "Core" row)."""

    freq_ghz: float = 4.0
    issue_width: int = 6
    retire_width: int = 4
    rob_entries: int = 352
    lq_entries: int = 128
    #: Pipeline-refill penalty after a branch mispredict resolves (cycles).
    mispredict_penalty: int = 15
    #: Cycles between dispatch and the data-cache access of a load (AGU etc.).
    load_issue_latency: int = 1
    #: Execution latency of non-memory instructions (cycles).
    alu_latency: int = 1


@dataclass(frozen=True)
class CacheParams:
    """One cache level."""

    name: str
    size_kb: int
    ways: int
    latency: int
    mshrs: int
    #: Accesses accepted per cycle (tag/port bandwidth).
    ports: int = 2
    line_size: int = 64
    #: Maximum queued prefetch requests at this level.
    pq_entries: int = 16
    #: Replacement policy: "lru" (Table II), "srrip", or "random".
    replacement: str = "lru"

    @property
    def sets(self) -> int:
        return (self.size_kb * 1024) // (self.line_size * self.ways)

    @property
    def blocks(self) -> int:
        return self.sets * self.ways


@dataclass(frozen=True)
class DRAMParams:
    """DRAM channel parameters (Table II, "DRAM" row), in core cycles."""

    t_rp: int = 50
    t_rcd: int = 50
    t_cas: int = 50
    #: DDR5-class devices expose 32 banks; 16 per channel keeps bank-level
    #: parallelism realistic for the 6400 MT/s part of Table II.
    banks: int = 16
    row_buffer_bytes: int = 4096
    #: Core cycles the shared data bus is busy per 64-byte transfer.
    #: 64 B / (6400 MT/s * 8 B) = 1.25 ns = 5 cycles at 4 GHz.
    bus_cycles_per_line: int = 5
    #: Fixed controller queueing overhead per request (cycles).
    controller_latency: int = 10
    #: Low-priority (prefetch) queue depth, in cycles of bus backlog beyond
    #: the demand bus, past which new prefetches are throttled.
    prefetch_backlog_margin: int = 150


@dataclass(frozen=True)
class GhostMinionParams:
    """GhostMinion (GM) speculative-cache parameters (Section II-C / VI).

    The 2 KB GM is fully associative (32 ways x 1 set): a structure this
    small is CAM-indexed in hardware, and set conflicts would otherwise
    dominate its behaviour.
    """

    size_kb: int = 2
    ways: int = 32
    latency: int = 1
    line_size: int = 64

    @property
    def sets(self) -> int:
        return (self.size_kb * 1024) // (self.line_size * self.ways)

    @property
    def blocks(self) -> int:
        return self.sets * self.ways


@dataclass(frozen=True)
class SystemParams:
    """Complete single-core system configuration."""

    core: CoreParams = field(default_factory=CoreParams)
    #: Translation hierarchy (Table II "TLBs" row).
    tlb: TLBParams = field(default_factory=TLBParams)
    l1d: CacheParams = field(default_factory=lambda: CacheParams(
        name="L1D", size_kb=48, ways=12, latency=5, mshrs=16, ports=2,
        pq_entries=16))
    l2: CacheParams = field(default_factory=lambda: CacheParams(
        name="L2", size_kb=512, ways=8, latency=15, mshrs=32, ports=1,
        pq_entries=32))
    llc: CacheParams = field(default_factory=lambda: CacheParams(
        name="LLC", size_kb=2048, ways=16, latency=35, mshrs=64, ports=1,
        pq_entries=32))
    dram: DRAMParams = field(default_factory=DRAMParams)
    gm: GhostMinionParams = field(default_factory=GhostMinionParams)

    def scaled(self, factor: int) -> "SystemParams":
        """Return a configuration with cache capacities divided by ``factor``.

        Scaling caches down lets short synthetic traces exercise the same
        capacity behaviours as 200M-instruction SimPoints on full-size caches.
        Way counts and latencies are preserved; only the number of sets
        shrinks.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")

        def shrink(cache: CacheParams) -> CacheParams:
            new_kb = max(cache.ways * cache.line_size // 1024,
                         cache.size_kb // factor)
            new_kb = max(new_kb, 1)
            return replace(cache, size_kb=new_kb)

        return replace(self, l1d=shrink(self.l1d), l2=shrink(self.l2),
                       llc=shrink(self.llc))


def params_digest(params: SystemParams) -> str:
    """Stable SHA-256 of a configuration's full parameter tree.

    The persistent result store keys records by this digest (among other
    inputs), so two :class:`SystemParams` hash equal iff every nested
    field is equal -- independent of process, platform, or dict order.
    """
    payload = json.dumps(asdict(params), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def baseline() -> SystemParams:
    """The Table II baseline configuration."""
    return SystemParams()


def validate(params: SystemParams) -> None:
    """Sanity-check a configuration, raising ``ValueError`` on nonsense."""
    for cache in (params.l1d, params.l2, params.llc):
        if cache.sets <= 0:
            raise ValueError(f"{cache.name}: non-positive set count")
        if cache.sets & (cache.sets - 1):
            raise ValueError(f"{cache.name}: set count {cache.sets} "
                             "is not a power of two")
        if cache.mshrs <= 0 or cache.ports <= 0:
            raise ValueError(f"{cache.name}: need at least one MSHR and port")
    if not params.l1d.latency < params.l2.latency < params.llc.latency:
        raise ValueError("cache latencies must increase down the hierarchy")
    if params.gm.blocks <= 0:
        raise ValueError("GhostMinion cache must hold at least one block")
    if params.core.rob_entries < params.core.lq_entries:
        raise ValueError("ROB must be at least as large as the load queue")
