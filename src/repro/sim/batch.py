"""Batch (block-at-a-time) front-end support for :meth:`System.stepper`.

The scalar stepper interprets one record tuple at a time: unpack, test
flag bits, shift the address, count the instruction, and compare against
the warm-up / sampler / yield thresholds -- every record, every run.  All
of that work is a pure function of the trace, so the batch front-end
hoists it into a one-time **prescan** that classifies every record into a
small-int code and precomputes the per-record values the simulate loop
would otherwise derive:

``codes``
    one byte per record (``C_*`` below); the inner loop dispatches on it
    instead of re-testing flag combinations.
``blocks``
    cache-block number per record (``vaddr >> BLOCK_SHIFT``), as plain
    Python ints (NumPy scalars must never leak into the simulate loop).
``ips``
    instruction pointers as a plain list (indexed only for loads).
``cum``
    committed-record prefix counts: ``cum[j]`` is the number of
    committed-path records among ``records[0..j]``.  The outer loop
    binary-searches this to turn "pause after the k-th committed
    instruction" (warm-up reset, sampler boundary, multicore yield) into
    a record index, so the inner loop runs with **zero** per-record
    boundary checks.
``same_page``
    1 where a load record touches the same 4 KB page as the immediately
    preceding load record.  Only loads touch the dTLB and the previous
    load always leaves its page most-recently-used, so these are
    guaranteed dTLB hits whose move-to-back is a no-op -- the stepper
    skips the dict probe entirely.

Everything here is exact: the prescan encodes the same decisions the
scalar loop makes, never approximations of them, and the golden suite
(tests/sim/test_golden_stats.py, tests/sim/test_batch.py) pins the two
paths bit-identical.

NumPy is a **soft dependency**: when importable (and not blocked by the
``REPRO_NO_NUMPY`` environment variable), the prescan runs as vector
operations; otherwise a pure-stdlib twin produces the identical plan
(``bytes.translate`` with precomputed 256-entry tables does the record
classification at C speed even without NumPy).
"""

from __future__ import annotations

import os
from bisect import bisect_left
from itertools import accumulate
from typing import List, Sequence

from ..workloads.trace import (FLAG_BRANCH, FLAG_LOAD, FLAG_MISPREDICT,
                               FLAG_STORE, FLAG_WRONG_PATH)

if os.environ.get("REPRO_NO_NUMPY"):  # forced-fallback hook (tests, CI)
    np = None
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised via poisoned subprocess
        np = None

#: True when the vectorized prescan backend is active.
HAVE_NUMPY = np is not None

# Record class codes.  Committed-path codes are < C_WRONG_LOAD so the
# inner loop tests "committed?" with one compare; the prescan derives the
# code with exactly the scalar loop's branch structure (FLAG_LOAD wins
# over FLAG_STORE; FLAG_MISPREDICT only matters on branches; wrong-path
# non-loads all behave identically -- dispatch slot + commit drain only).
C_ALU = 0
C_BRANCH = 1
C_MISPREDICT = 2
C_LOAD = 3
C_STORE = 4
C_WRONG_LOAD = 5
C_WRONG_OTHER = 6


def _code_of(flags: int) -> int:
    if flags & FLAG_LOAD:
        return C_WRONG_LOAD if flags & FLAG_WRONG_PATH else C_LOAD
    if flags & FLAG_WRONG_PATH:
        return C_WRONG_OTHER
    if flags & FLAG_STORE:
        return C_STORE
    if flags & FLAG_BRANCH:
        return C_MISPREDICT if flags & FLAG_MISPREDICT else C_BRANCH
    return C_ALU


#: flags byte -> class code, for ``bytes.translate`` / NumPy fancy index.
CODE_TABLE = bytes(_code_of(f) for f in range(256))
#: class code -> 1 if committed-path else 0 (prefix-summed into ``cum``).
_COMMIT_TABLE = bytes(1 if c < C_WRONG_LOAD else 0 for c in range(256))
_IS_LOAD = frozenset((C_LOAD, C_WRONG_LOAD))

if HAVE_NUMPY:
    _NP_CODE_TABLE = np.frombuffer(CODE_TABLE, dtype=np.uint8)


class BatchPlan:
    """Precomputed per-record columns for one trace (see module docstring)."""

    __slots__ = ("n", "codes", "blocks", "ips", "cum", "same_page",
                 "committed_total")

    def __init__(self, codes: bytes, blocks: List[int], ips: Sequence[int],
                 cum: List[int], same_page: bytes) -> None:
        self.n = len(codes)
        self.codes = codes
        self.blocks = blocks
        self.ips = ips
        self.cum = cum
        self.same_page = same_page
        self.committed_total = cum[-1] if cum else 0

    def index_of_committed(self, k: int) -> int:
        """Record index of the ``k``-th (1-based) committed record."""
        return bisect_left(self.cum, k)


def _as_flag_bytes(flags: Sequence[int]) -> bytes:
    if isinstance(flags, bytes):
        return flags
    return bytes(flags)  # bytearray, list, array('b'), ...


def _prescan_numpy(ips, vaddrs, flags) -> BatchPlan:
    flag_bytes = _as_flag_bytes(flags)
    flags_np = np.frombuffer(flag_bytes, dtype=np.uint8)
    codes_np = _NP_CODE_TABLE[flags_np]
    try:
        vaddrs_np = np.frombuffer(vaddrs, dtype=np.int64)
    except (TypeError, ValueError, AttributeError):
        vaddrs_np = np.asarray(vaddrs, dtype=np.int64)
    blocks_np = vaddrs_np >> 6  # BLOCK_SHIFT; arithmetic shift keeps -1
    # dTLB same-page chain over load records only (committed and wrong
    # path -- both touch the TLB, in record order).
    load_idx = np.flatnonzero((codes_np == C_LOAD)
                              | (codes_np == C_WRONG_LOAD))
    same_np = np.zeros(len(codes_np), dtype=np.uint8)
    if len(load_idx) > 1:
        pages = blocks_np[load_idx] >> 6  # page = block >> 6
        same_np[load_idx[1:]] = pages[1:] == pages[:-1]
    cum = np.cumsum(codes_np < C_WRONG_LOAD, dtype=np.int64).tolist()
    ips_list = ips if type(ips) is list else list(ips)
    return BatchPlan(codes_np.tobytes(), blocks_np.tolist(), ips_list,
                     cum, same_np.tobytes())


def _prescan_stdlib(ips, vaddrs, flags) -> BatchPlan:
    flag_bytes = _as_flag_bytes(flags)
    codes = flag_bytes.translate(CODE_TABLE)
    blocks = [v >> 6 for v in vaddrs]
    cum = list(accumulate(codes.translate(_COMMIT_TABLE)))
    same_page = bytearray(len(codes))
    prev_page = -1 << 70  # no real page compares equal
    is_load = _IS_LOAD
    for j, code in enumerate(codes):
        if code in is_load:
            page = blocks[j] >> 6
            if page == prev_page:
                same_page[j] = 1
            else:
                prev_page = page
    ips_list = ips if type(ips) is list else list(ips)
    return BatchPlan(codes, blocks, ips_list, cum, bytes(same_page))


def prescan(trace) -> BatchPlan:
    """Build a :class:`BatchPlan` for ``trace`` (vectorized when possible)."""
    ips, vaddrs, flags = trace.columns()
    if HAVE_NUMPY:
        return _prescan_numpy(ips, vaddrs, flags)
    return _prescan_stdlib(ips, vaddrs, flags)


def plan_for(trace) -> BatchPlan:
    """Cached :func:`prescan`: one plan per trace object, reused across
    configurations and runs (the plan is derived data and is stripped
    from pickled traces)."""
    plan = getattr(trace, "_batch_plan", None)
    if plan is None:
        plan = prescan(trace)
        try:
            trace._batch_plan = plan
        except AttributeError:  # exotic trace without a __dict__
            pass
    return plan


def batch_default() -> bool:
    """Resolve the batch front-end default: the ``REPRO_BATCH``
    environment variable when set (``0``/``false``/``no``/``off`` disable,
    anything else enables), else NumPy availability.  Worker processes
    inherit the environment, so the CLI's ``--batch/--no-batch`` applies
    to sharded runs too."""
    env = os.environ.get("REPRO_BATCH")
    if env is not None:
        return env.strip().lower() not in ("0", "false", "no", "off", "")
    return HAVE_NUMPY
