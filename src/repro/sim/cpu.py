"""Out-of-order core timing model.

A one-pass analytical model of the Table II core: in-order fetch/dispatch at
``issue_width`` per cycle, out-of-order execution (loads overlap freely,
bounded by the load queue), and in-order retirement at ``retire_width`` per
cycle through a finite ROB.  Branch mispredicts insert a front-end bubble
when the redirect reaches dispatch.

The model computes, for each instruction in program order, its dispatch time
and retire time; memory latencies come from the hierarchy.  Processing is
single-pass because both the dispatch-time stream and the retire-time stream
are monotone in program order, which also lets the simulator merge the
access-time and commit-time event streams in global time order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from .params import CoreParams


class CoreModel:
    """Dispatch/retire timing bookkeeping for one core."""

    def __init__(self, params: CoreParams) -> None:
        self.params = params
        self._dispatch_cycle = 0
        self._dispatch_slot = 0
        self._retire_cycle = 0
        self._retire_slot = 0
        #: Retire times of in-flight committed-path instructions (ROB).
        self._rob: Deque[int] = deque()
        #: Completion times of in-flight loads (LQ), wrong-path included.
        self._lq: Deque[int] = deque()
        self._load_seq = 0
        self.final_retire = 0
        # Hot-path hoists: dispatch/retire/lq_* run once per record, and
        # a flat attribute is cheaper than the params chain.
        self._rob_entries = params.rob_entries
        self._issue_width = params.issue_width
        self._retire_width_m1 = params.retire_width - 1
        self._lq_entries = params.lq_entries

    @property
    def current_cycle(self) -> int:
        """The front end's current dispatch cycle."""
        return self._dispatch_cycle

    @property
    def retire_frontier(self) -> int:
        """Cycle at which the most recent in-order retirement happened.

        A load reaching this point is the oldest instruction in flight --
        delay-based mitigations use it as the "safe to issue" horizon.
        """
        return self._retire_cycle

    def occupancy(self) -> dict:
        """Point-in-time ROB/LQ depths (read by the interval sampler)."""
        return {"rob": len(self._rob), "lq": len(self._lq)}

    # ------------------------------------------------------------------
    # front end
    # ------------------------------------------------------------------

    def dispatch(self, wrong_path: bool) -> int:
        """Dispatch the next instruction; return its dispatch cycle."""
        if not wrong_path and len(self._rob) >= self._rob_entries:
            oldest = self._rob.popleft()
            if oldest > self._dispatch_cycle:
                self._dispatch_cycle = oldest
                self._dispatch_slot = 0
        cycle = self._dispatch_cycle
        self._dispatch_slot += 1
        if self._dispatch_slot >= self._issue_width:
            self._dispatch_cycle += 1
            self._dispatch_slot = 0
        return cycle

    def redirect(self, cycle: int) -> None:
        """Apply a branch-mispredict front-end redirect at ``cycle``."""
        if cycle > self._dispatch_cycle:
            self._dispatch_cycle = cycle
            self._dispatch_slot = 0

    # ------------------------------------------------------------------
    # load queue
    # ------------------------------------------------------------------

    def lq_allocate(self, issue_time: int) -> int:
        """Claim an LQ entry; returns the (possibly delayed) issue time.

        The caller must follow up with :meth:`lq_complete` once the load's
        completion time is known.
        """
        if len(self._lq) >= self._lq_entries:
            oldest = self._lq.popleft()
            if oldest > issue_time:
                issue_time = oldest
        return issue_time

    def lq_complete(self, completion: int) -> int:
        """Record the load's completion; returns its LQ slot id (X-LQ
        index)."""
        self._lq.append(completion)
        slot = self._load_seq % self._lq_entries
        self._load_seq += 1
        return slot

    # ------------------------------------------------------------------
    # back end
    # ------------------------------------------------------------------

    def retire(self, complete_time: int, dispatch_time: int) -> int:
        """Retire the next committed-path instruction in order."""
        ready = dispatch_time + 1
        if complete_time > ready:
            ready = complete_time
        if ready > self._retire_cycle:
            self._retire_cycle = ready
            self._retire_slot = 0
        elif self._retire_slot < self._retire_width_m1:
            self._retire_slot += 1
        else:
            self._retire_cycle += 1
            self._retire_slot = 0
        retire_time = self._retire_cycle
        self._rob.append(retire_time)
        if retire_time > self.final_retire:
            self.final_retire = retire_time
        return retire_time
