"""The GhostMinion speculative cache (GM).

A small (2 KB) cache accessed in parallel with the L1D that holds the data of
speculative loads until they commit (Section II-C).  Fills from the memory
hierarchy bypass L1D/L2/LLC and land only here; on commit the data moves to
the L1D (on-commit write) or, if the GM line has been evicted in the interim,
the hierarchy is re-fetched.

TimeGuarding / strictness ordering is modelled with per-line instruction
timestamps: an insertion prefers invalid ways, then evicts the *youngest*
line (largest timestamp).  An older instruction therefore never has its
observable GM contents destroyed by a younger (possibly transient)
instruction, which is the property GhostMinion's TimeGuarding enforces.  If
every resident line is strictly older than the inserting instruction, the
insertion is dropped: a younger instruction may not evict state an older
instruction can still observe.

Role in the on-access/on-commit pipeline: the GM is what makes
speculation invisible at access time -- wrong-path loads fill only here
and are squashed in place, so neither the caches nor an on-access
prefetcher ever see them.  The price is paid at commit time, when every
committed load's data must move GM->L1D (or be re-fetched if evicted),
doubling L1D traffic (Section III-A).  That commit stream is exactly
where the paper's mechanisms attach: the SUF (Section IV) consults the
2-bit hit level recorded at access time to drop/truncate redundant
commit updates (``stats.commit_drops_suf`` / ``suf_accuracy``), and TSB
(Section V) trains at commit with X-LQ-preserved access-time timing --
both orchestrated by :mod:`repro.sim.hierarchy` and
:mod:`repro.sim.system`, which call :meth:`GhostMinionCache.lookup`,
:meth:`fill`, :meth:`apply_pending`, and :meth:`take` here.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from .params import GhostMinionParams
from .stats import GhostMinionStats


class GMLine:
    """One GM line."""

    __slots__ = ("timestamp", "fill_time", "fetch_latency", "transient")

    def __init__(self, timestamp: int, fill_time: int, fetch_latency: int,
                 transient: bool = False) -> None:
        #: Program-order sequence number of the inserting instruction.
        self.timestamp = timestamp
        #: Cycle at which the data arrives in the GM.
        self.fill_time = fill_time
        #: Cycles the fetch took to reach the GM (used by TSB training).
        self.fetch_latency = fetch_latency
        #: Inserted by a wrong-path load.  Once its branch resolves the line
        #: is dead (it will never be committed), so TimeGuarding lets anyone
        #: reclaim it -- without this, squashed lines would accumulate as
        #: unevictable "oldest" residents and wedge the GM.
        self.transient = transient


class GhostMinionCache:
    """The GM: a tiny timestamp-ordered speculative cache."""

    def __init__(self, params: GhostMinionParams,
                 stats: Optional[GhostMinionStats] = None) -> None:
        self.params = params
        self.stats = stats if stats is not None else GhostMinionStats()
        self._set_mask = params.sets - 1
        self._ways = params.ways
        self.sets: List[Dict[int, GMLine]] = [
            dict() for _ in range(params.sets)]
        #: Fills whose data has not physically arrived yet.  Installing a
        #: line (and evicting a victim) only when its fill time passes keeps
        #: GM occupancy at its physical level -- roughly the MSHR-bounded
        #: number of outstanding misses -- instead of the much larger number
        #: of *queued* loads the one-pass simulator knows about early.
        self._pending: Dict[int, GMLine] = {}
        self._pending_heap: List[Tuple[int, int]] = []
        #: Insertions dropped to preserve strictness ordering.
        self.ordering_drops = 0
        #: Optional :class:`repro.obs.events.EventTrace` (``None`` = off).
        self.events = None

    @property
    def latency(self) -> int:
        return self.params.latency

    def _set_of(self, block: int) -> Dict[int, GMLine]:
        return self.sets[block & self._set_mask]

    def lookup(self, block: int, time: Optional[int] = None
               ) -> Optional[GMLine]:
        """Return the GM line for ``block`` if present or in flight (and
        filled by ``time``, when given)."""
        line = self.sets[block & self._set_mask].get(block)
        if line is None:
            line = self._pending.get(block)
            if line is None:
                return None
        if time is not None and line.fill_time > time:
            return None
        return line

    def fill(self, block: int, time: int, timestamp: int,
             fetch_latency: int, transient: bool = False) -> None:
        """Register a speculative fill arriving at cycle ``time``.

        The line becomes eligible for installation (and may evict a victim)
        once :meth:`apply_until` passes its fill time.
        """
        existing = self._set_of(block).get(block)
        if existing is None:
            existing = self._pending.get(block)
        if existing is not None:
            # Keep the oldest observer's view; refresh the fill time only if
            # the line was still in flight.
            existing.fill_time = min(existing.fill_time, time)
            existing.timestamp = min(existing.timestamp, timestamp)
            existing.transient = existing.transient and transient
            return
        self._pending[block] = GMLine(timestamp, time, fetch_latency,
                                      transient)
        heapq.heappush(self._pending_heap, (time, block))
        self.stats.gm_fills += 1
        if self.events is not None:
            self.events.emit("gm_fill", time, block, "GM")

    def apply_until(self, now: int) -> None:
        """Install all pending fills whose data has arrived by ``now``."""
        heap = self._pending_heap
        while heap and heap[0][0] <= now:
            _, block = heapq.heappop(heap)
            line = self._pending.pop(block, None)
            if line is not None:
                self._install(block, line)

    def _install(self, block: int, line: GMLine) -> None:
        set_ = self._set_of(block)
        if block in set_:
            return
        if len(set_) >= self._ways:
            # Explicit scans (no genexp/lambda allocation per install),
            # preserving insertion-order tie-breaks of the next()/max()
            # forms they replaced.
            # Reclaim a squashed line first: nothing can observe it anymore.
            timestamp = line.timestamp
            victim_block = None
            for b, ln in set_.items():
                if ln.transient and ln.timestamp < timestamp:
                    victim_block = b
                    break
            if victim_block is None:
                victim_ts = None
                for b, ln in set_.items():
                    ts = ln.timestamp
                    if victim_ts is None or ts > victim_ts:
                        victim_ts = ts
                        victim_block = b
                if victim_ts < timestamp:
                    # Everyone resident is older: a younger instruction must
                    # not evict state an older one may still observe
                    # (TimeGuarding).
                    self.ordering_drops += 1
                    if self.events is not None:
                        self.events.emit("gm_drop", line.fill_time, block,
                                         "GM")
                    return
            del set_[victim_block]
        set_[block] = line

    def take(self, block: int) -> Optional[GMLine]:
        """Remove and return the line (commit moves the data to L1D)."""
        line = self.sets[block & self._set_mask].pop(block, None)
        if line is None:
            line = self._pending.pop(block, None)
        return line

    def invalidate(self, block: int) -> None:
        self._set_of(block).pop(block, None)
        self._pending.pop(block, None)

    def flush(self) -> None:
        """Drop all speculative state (e.g., on a domain switch)."""
        for set_ in self.sets:
            set_.clear()
        self._pending.clear()
        self._pending_heap.clear()

    def occupancy(self) -> int:
        return sum(len(set_) for set_ in self.sets)

    def state_signature(self) -> tuple:
        return tuple(
            tuple(sorted((blk, ln.timestamp) for blk, ln in set_.items()))
            for set_ in self.sets)
