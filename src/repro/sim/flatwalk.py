"""Flattened cache-hierarchy descent (one frame for the whole walk).

``make_flat_descent`` builds a closure that is a *semantically identical
twin* of the recursive ``CacheLevel.access`` chain (which stays the
readable reference): same counters bumped in the same order, same
port/MSHR charges, same completion arithmetic.  The win is structural --
one Python frame for the whole descent instead of one per level plus the
``MemoryBackend`` adapter and the ``_mshr_acquire`` helper, with every
collaborator hoisted into closure cells once instead of re-read through
``self`` per call.

The entry level is fully specialized (individual cells, no per-level
tuple unpack) because most calls resolve there: under GhostMinion every
speculative load takes this path and the majority are L1D hits.  Deeper
levels run a generic loop over per-level hoist tuples -- by then the
call is a miss descent and the unpack is amortized by the MSHR/DRAM
work.

Only built for plain chains (no ``ScrambledBackend`` between levels, see
``MemoryHierarchy``); with an event trace attached to any level in the
chain the walk defers to the recursive path so emission sites stay in
one place.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Tuple

from .stats import REQ_COMMIT, REQ_LOAD, REQ_PREFETCH, REQ_STORE

#: Mirror of ``cache.LEVEL_DRAM`` (imported lazily to avoid a cycle).
_LEVEL_DRAM = 3


def make_flat_descent(levels: Tuple, dram):
    """Build a one-frame walk of ``levels`` terminating in ``dram``."""
    lower = tuple(
        (lvl.sets, lvl._set_mask, lvl._port_counts, lvl._port_n,
         lvl._ports, lvl._port_acquire, lvl._latency, lvl._outstanding,
         lvl._mshr_times, lvl.stats, lvl._accesses, lvl._hits,
         lvl._misses, lvl, lvl.level)
        for lvl in levels[1:])
    entry = levels[0]
    entry_access = entry.access
    # Entry-level collaborators as individual closure cells.
    e_sets = entry.sets
    e_mask = entry._set_mask
    e_counts = entry._port_counts
    e_port_n = entry._port_n
    e_ports = entry._ports
    e_port_acquire = entry._port_acquire
    e_latency = entry._latency
    e_outstanding = entry._outstanding
    e_mshr_times = entry._mshr_times
    e_stats = entry.stats
    e_accesses = entry._accesses
    e_hits = entry._hits
    e_misses = entry._misses
    e_merge = entry._merge
    e_insert = entry.insert
    e_level = entry.level
    watch = levels[1:]
    dram_access = dram.access

    def descend(block, time, rtype, update=True, fill=True,
                count_useful=True):
        if entry.events is not None:
            return entry_access(block, time, rtype, update, fill,
                                count_useful)
        for lvl in watch:
            if lvl.events is not None:
                return entry_access(block, time, rtype, update, fill,
                                    count_useful)
        # ------------------------------------------------------- entry
        e_accesses[rtype] += 1
        # _PortBucket.acquire's free-port arm, inlined (same trim
        # accounting as the recursive path).
        pc = e_counts.get(time, 0)
        if pc < e_port_n:
            e_counts[time] = pc + 1
            e_ports._acquires += 1
            start = time
        else:
            start = e_port_acquire(time)
        line = e_sets[block & e_mask].get(block)
        if line is not None:
            ready = start + e_latency
            if line.fill_time <= ready:
                # Plain hit: the overwhelmingly common outcome.
                e_hits[rtype] += 1
                if update:
                    line.last_touch = time
                    line.rrpv = 0
                    if rtype is REQ_STORE:
                        line.dirty = True
                if line.prefetched and count_useful \
                        and not line.was_demand_hit \
                        and (rtype is REQ_LOAD or rtype is REQ_STORE):
                    line.was_demand_hit = True
                    e_stats.prefetches_useful += 1
                return ready, e_level
            return e_merge(block, line.fill_time, line.prefetched, start,
                           rtype, rtype is REQ_LOAD or rtype is REQ_STORE,
                           count_useful, line)
        entry_o = e_outstanding.get(block)
        if entry_o is not None:
            entry_fill = entry_o[0]
            if entry_fill <= start:
                del e_outstanding[block]
                entry_o = None
            else:
                return e_merge(block, entry_fill, entry_o[1], start,
                               rtype,
                               rtype is REQ_LOAD or rtype is REQ_STORE,
                               count_useful, None)
        # True miss at the entry level: claim an MSHR (_mshr_acquire,
        # inlined) and take the generic descent below.
        demand = rtype is REQ_LOAD or rtype is REQ_STORE
        is_store = rtype is REQ_STORE
        is_load = rtype is REQ_LOAD
        is_pf = rtype is REQ_PREFETCH
        e_misses[rtype] += 1
        free_at = e_mshr_times[0]
        e_stats.mshr_occupancy_sum += \
            len(e_mshr_times) - bisect_right(e_mshr_times, start)
        e_stats.mshr_occupancy_samples += 1
        if free_at > start:
            e_stats.mshr_full_events += 1
            e_stats.mshr_full_wait_cycles += free_at - start
            alloc = free_at
        else:
            alloc = start
        del e_mshr_times[0]
        pending = [(e_mshr_times, e_stats, e_outstanding, e_insert, time,
                    start)]
        t = alloc + e_latency
        # ------------------------------------------------- lower levels
        completion = served = None
        for (sets, mask, counts, port_n, ports, port_acquire, latency,
             outstanding, mshr_times, stats, accesses, hits, misses,
             lvl_obj, lvl_num) in lower:
            accesses[rtype] += 1
            pc = counts.get(t, 0)
            if pc < port_n:
                counts[t] = pc + 1
                ports._acquires += 1
                start = t
            else:
                start = port_acquire(t)
            line = sets[block & mask].get(block)
            if line is not None:
                ready = start + latency
                if line.fill_time <= ready:
                    hits[rtype] += 1
                    if update:
                        line.last_touch = t
                        line.rrpv = 0
                        if is_store:
                            line.dirty = True
                    if line.prefetched and count_useful \
                            and not line.was_demand_hit and demand:
                        line.was_demand_hit = True
                        stats.prefetches_useful += 1
                    completion = ready
                    served = lvl_num
                    break
                completion, served = lvl_obj._merge(
                    block, line.fill_time, line.prefetched, start, rtype,
                    demand, count_useful, line)
                break
            entry_o = outstanding.get(block)
            if entry_o is not None:
                entry_fill = entry_o[0]
                if entry_fill <= start:
                    del outstanding[block]
                else:
                    completion, served = lvl_obj._merge(
                        block, entry_fill, entry_o[1], start, rtype,
                        demand, count_useful, None)
                    break
            misses[rtype] += 1
            free_at = mshr_times[0]
            stats.mshr_occupancy_sum += \
                len(mshr_times) - bisect_right(mshr_times, start)
            stats.mshr_occupancy_samples += 1
            if free_at > start:
                stats.mshr_full_events += 1
                stats.mshr_full_wait_cycles += free_at - start
                alloc = free_at
            else:
                alloc = start
            del mshr_times[0]
            pending.append((mshr_times, stats, outstanding,
                            lvl_obj.insert, t, start))
            t = alloc + latency
        else:
            completion = dram_access(block, t, demand)
            served = _LEVEL_DRAM
        # Unwind inner-first, exactly as the recursion returns:
        # _mshr_fill then (with fill) insert; the fill=True case skips
        # the transient outstanding entry _mshr_fill would add only for
        # insert's sibling pop to remove again.
        for (mshr_times, stats, outstanding, insert, arrival,
             start) in reversed(pending):
            insort(mshr_times, completion)
            if fill:
                insert(block, completion, is_pf, is_store,
                       latency=completion - arrival)
            else:
                outstanding[block] = (completion, is_pf, start)
            if is_load:
                stats.load_miss_latency_sum += completion - arrival
                stats.load_miss_latency_count += 1
        return completion, served

    return descend


def make_refetch_batch(levels: Tuple, dram):
    """Build a batched resolver for GhostMinion commit re-fetches.

    Takes ``[(block, t_ret), ...]`` -- the re-fetches of one drained
    commit window, in commit order -- and returns the per-block
    completion times.  Compared to per-block :func:`make_flat_descent`
    calls this amortizes two things:

    * the level collaborators (sets, port buckets, MSHR pools, stats)
      are bound to locals once per *window* instead of once per block;
    * blocks that miss every cache level are resolved through a single
      ``DRAMChannel.access_batch`` handoff at the end of the pass, so
      the DRAM bank/bus cursor bookkeeping is amortized over the whole
      window.

    Semantics note (reviewed, pinned by the figure-tolerance check
    rather than bit-identity): blocks that hit or merge in the cache
    chain complete -- fills included -- immediately and in commit
    order, exactly like the sequential walk.  DRAM-bound blocks charge
    their port/MSHR slots in commit order during the pass, but their
    *fills* land after the shared DRAM handoff.  A later re-fetch in
    the same window therefore probes tags that do not yet hold an
    earlier DRAM-bound block's fill; the sequential walk would have
    merged with that in-flight fill.  Re-fetches to the same block
    within one window are rare (distinct committed loads to one line),
    the per-block latency is still computed individually from that
    block's own descent and DRAM service, and GhostMinion's
    timestamp-ordering invariants are untouched (the drain applies GM
    updates before collecting the window).
    """
    hoists = tuple(
        (lvl.sets, lvl._set_mask, lvl._port_counts, lvl._port_n,
         lvl._ports, lvl._port_acquire, lvl._latency, lvl._outstanding,
         lvl._mshr_times, lvl.stats, lvl._accesses, lvl._hits,
         lvl._misses, lvl, lvl.level)
        for lvl in levels)
    entry_access = levels[0].access
    dram_batch = dram.access_batch

    def refetch_batch(pairs):
        for lvl in levels:
            if lvl.events is not None:
                # Event tracing active: defer to the recursive reference
                # walk so emission sites stay in one place.
                return [entry_access(block, t, REQ_COMMIT)[0]
                        for block, t in pairs]
        results = [0] * len(pairs)
        dram_reqs = []
        dram_pend = []
        for idx, (block, t) in enumerate(pairs):
            pending = []
            completion = None
            for (sets, mask, counts, port_n, ports, port_acquire,
                 latency, outstanding, mshr_times, stats, accesses,
                 hits, misses, lvl_obj, _lvl_num) in hoists:
                accesses[REQ_COMMIT] += 1
                pc = counts.get(t, 0)
                if pc < port_n:
                    counts[t] = pc + 1
                    ports._acquires += 1
                    start = t
                else:
                    start = port_acquire(t)
                line = sets[block & mask].get(block)
                if line is not None:
                    ready = start + latency
                    if line.fill_time <= ready:
                        hits[REQ_COMMIT] += 1
                        line.last_touch = t
                        line.rrpv = 0
                        completion = ready
                        break
                    completion, _ = lvl_obj._merge(
                        block, line.fill_time, line.prefetched, start,
                        REQ_COMMIT, False, True, line)
                    break
                entry_o = outstanding.get(block)
                if entry_o is not None:
                    entry_fill = entry_o[0]
                    if entry_fill <= start:
                        del outstanding[block]
                    else:
                        completion, _ = lvl_obj._merge(
                            block, entry_fill, entry_o[1], start,
                            REQ_COMMIT, False, True, None)
                        break
                misses[REQ_COMMIT] += 1
                free_at = mshr_times[0]
                stats.mshr_occupancy_sum += \
                    len(mshr_times) - bisect_right(mshr_times, start)
                stats.mshr_occupancy_samples += 1
                if free_at > start:
                    stats.mshr_full_events += 1
                    stats.mshr_full_wait_cycles += free_at - start
                    alloc = free_at
                else:
                    alloc = start
                del mshr_times[0]
                pending.append((mshr_times, lvl_obj.insert, t))
                t = alloc + latency
            else:
                # Missed every level: queue for the shared DRAM handoff.
                dram_reqs.append((block, t))
                dram_pend.append((idx, block, pending))
                continue
            for mshr_times, insert, arrival in reversed(pending):
                insort(mshr_times, completion)
                insert(block, completion, False, False,
                       latency=completion - arrival)
            results[idx] = completion
        if dram_reqs:
            completions = dram_batch(dram_reqs, False)
            for (idx, block, pending), completion in zip(dram_pend,
                                                         completions):
                for mshr_times, insert, arrival in reversed(pending):
                    insort(mshr_times, completion)
                    insert(block, completion, False, False,
                           latency=completion - arrival)
                results[idx] = completion
        return results

    return refetch_batch
