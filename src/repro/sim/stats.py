"""Statistics containers for the simulator.

Plain attribute-based counter objects (no dict lookups in hot paths).  Each
cache level owns a :class:`CacheStats`; the core owns a :class:`CoreStats`.
Per-kilo-instruction metrics are computed by ``repro.analysis.metrics`` from
these raw counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Request types seen by a cache level.
REQ_LOAD = "load"          # demand load from the core (or lower level miss)
REQ_STORE = "store"        # store/writeback from the core
REQ_PREFETCH = "prefetch"  # prefetcher-generated request
REQ_COMMIT = "commit"      # GhostMinion commit-time update (write or re-fetch)
REQ_WRITEBACK = "writeback"  # eviction traffic from a lower level

REQUEST_TYPES = (REQ_LOAD, REQ_STORE, REQ_PREFETCH, REQ_COMMIT, REQ_WRITEBACK)


@dataclass
class CacheStats:
    """Raw event counts for one cache level."""

    accesses: Dict[str, int] = field(
        default_factory=lambda: {t: 0 for t in REQUEST_TYPES})
    hits: Dict[str, int] = field(
        default_factory=lambda: {t: 0 for t in REQUEST_TYPES})
    misses: Dict[str, int] = field(
        default_factory=lambda: {t: 0 for t in REQUEST_TYPES})

    #: Demand misses that merged into an in-flight *prefetch* MSHR entry
    #: (the classic "late prefetch").
    demand_merged_into_prefetch: int = 0
    #: Demand misses that merged into any in-flight MSHR entry.
    mshr_merges: int = 0
    #: Total cycles requests spent waiting because every MSHR was busy.
    mshr_full_wait_cycles: int = 0
    #: Number of requests that had to wait for a free MSHR.
    mshr_full_events: int = 0
    #: Sum of MSHR occupancy sampled at each allocation (for mean occupancy).
    mshr_occupancy_sum: int = 0
    mshr_occupancy_samples: int = 0

    #: Demand-load miss latency (allocation to fill), cycles.
    load_miss_latency_sum: int = 0
    load_miss_latency_count: int = 0

    evictions: int = 0
    writebacks_out: int = 0

    #: Prefetch bookkeeping at this level.
    prefetches_issued: int = 0
    prefetches_dropped: int = 0      # PQ full or duplicate-in-cache
    prefetch_fills: int = 0
    prefetches_useful: int = 0       # filled block later hit by a demand
    prefetches_useless: int = 0      # filled block evicted without demand hit

    def total_accesses(self) -> int:
        return sum(self.accesses.values())

    def demand_accesses(self) -> int:
        return self.accesses[REQ_LOAD] + self.accesses[REQ_STORE]

    def demand_misses(self) -> int:
        return self.misses[REQ_LOAD] + self.misses[REQ_STORE]

    def load_miss_latency_avg(self) -> float:
        if not self.load_miss_latency_count:
            return 0.0
        return self.load_miss_latency_sum / self.load_miss_latency_count

    def mshr_occupancy_avg(self) -> float:
        if not self.mshr_occupancy_samples:
            return 0.0
        return self.mshr_occupancy_sum / self.mshr_occupancy_samples

    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches that were useful.

        Only prefetches with a resolved outcome (useful or useless) are
        counted, so in-flight prefetches at the end of simulation do not
        bias the metric.
        """
        resolved = self.prefetches_useful + self.prefetches_useless
        if not resolved:
            return 0.0
        return self.prefetches_useful / resolved

    def reset(self) -> None:
        """Zero all counters (used at the end of warm-up)."""
        for table in (self.accesses, self.hits, self.misses):
            for key in table:
                table[key] = 0
        self.demand_merged_into_prefetch = 0
        self.mshr_merges = 0
        self.mshr_full_wait_cycles = 0
        self.mshr_full_events = 0
        self.mshr_occupancy_sum = 0
        self.mshr_occupancy_samples = 0
        self.load_miss_latency_sum = 0
        self.load_miss_latency_count = 0
        self.evictions = 0
        self.writebacks_out = 0
        self.prefetches_issued = 0
        self.prefetches_dropped = 0
        self.prefetch_fills = 0
        self.prefetches_useful = 0
        self.prefetches_useless = 0


@dataclass
class CoreStats:
    """Per-core execution statistics."""

    committed_instructions: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    cycles: int = 0
    wrong_path_loads: int = 0
    branch_mispredicts: int = 0

    def ipc(self) -> float:
        if not self.cycles:
            return 0.0
        return self.committed_instructions / self.cycles

    def reset(self) -> None:
        self.committed_instructions = 0
        self.committed_loads = 0
        self.committed_stores = 0
        self.cycles = 0
        self.wrong_path_loads = 0
        self.branch_mispredicts = 0


@dataclass
class GhostMinionStats:
    """GhostMinion-specific event counts."""

    gm_fills: int = 0
    gm_hits: int = 0
    gm_misses: int = 0
    commit_writes: int = 0       # GM hit at commit -> on-commit write to L1D
    commit_refetches: int = 0    # GM miss at commit -> re-fetch into hierarchy
    #: Re-fetches for loads that *had* a GM entry (hit level > L1D) but
    #: lost it to eviction before commit -- the GM-capacity-sensitive part.
    gm_lost_before_commit: int = 0
    commit_drops_suf: int = 0    # commit updates filtered out by SUF
    wb_stopped_suf: int = 0      # writeback propagation stopped by a SUF bit
    suf_correct: int = 0         # SUF filtered and the line was still cached
    suf_mispredict: int = 0      # SUF filtered but the line had been evicted

    def suf_accuracy(self) -> float:
        decided = self.suf_correct + self.suf_mispredict
        if not decided:
            return 1.0
        return self.suf_correct / decided

    def reset(self) -> None:
        self.gm_fills = 0
        self.gm_hits = 0
        self.gm_misses = 0
        self.commit_writes = 0
        self.commit_refetches = 0
        self.gm_lost_before_commit = 0
        self.commit_drops_suf = 0
        self.wb_stopped_suf = 0
        self.suf_correct = 0
        self.suf_mispredict = 0


@dataclass
class DRAMStats:
    """DRAM channel statistics."""

    requests: int = 0
    row_hits: int = 0
    row_misses: int = 0

    def row_hit_rate(self) -> float:
        if not self.requests:
            return 0.0
        return self.row_hits / self.requests

    def reset(self) -> None:
        self.requests = 0
        self.row_hits = 0
        self.row_misses = 0
