"""Statistics containers for the simulator.

Plain attribute-based counter objects (no dict lookups in hot paths).  Each
cache level owns a :class:`CacheStats`; the core owns a :class:`CoreStats`.
Per-kilo-instruction metrics are computed by ``repro.analysis.metrics`` from
these raw counts.

Every container derives :meth:`~StatsStruct.reset` and
:meth:`~StatsStruct.snapshot` from ``dataclasses.fields`` via the shared
:class:`StatsStruct` base, so adding a counter field is all it takes for the
field to be zeroed at the warm-up reset, appear in metric-registry dumps,
and flow into the interval time-series.  (Hand-maintained ``reset()`` lists
once silently skipped newly added counters.)
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

#: Request types seen by a cache level.
REQ_LOAD = "load"          # demand load from the core (or lower level miss)
REQ_STORE = "store"        # store/writeback from the core
REQ_PREFETCH = "prefetch"  # prefetcher-generated request
REQ_COMMIT = "commit"      # GhostMinion commit-time update (write or re-fetch)
REQ_WRITEBACK = "writeback"  # eviction traffic from a lower level

REQUEST_TYPES = (REQ_LOAD, REQ_STORE, REQ_PREFETCH, REQ_COMMIT,
                 REQ_WRITEBACK)


class StatsStruct:
    """Fields-driven reset/snapshot for flat counter dataclasses.

    Supported field shapes: ``int`` / ``float`` scalars and ``Dict[str,
    int]`` tables (whose key sets are preserved across resets).  Anything
    else is a design error in the stats container and is rejected loudly
    rather than silently skipped.

    Concrete containers are ``@dataclass(slots=True)``: the counters are
    bumped on every access in the simulator's hottest loops, and slotted
    attribute access is measurably faster (and cheaper per instance)
    than ``__dict__``.  The empty ``__slots__`` here keeps the base from
    re-introducing a dict.
    """

    __slots__ = ()

    def reset(self) -> None:
        """Zero every counter (used at the end of warm-up)."""
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, dict):
                for key in value:
                    value[key] = 0
            elif isinstance(value, (int, float)):
                setattr(self, f.name, type(value)())
            else:
                raise TypeError(
                    f"{type(self).__name__}.{f.name}: unsupported stats "
                    f"field type {type(value).__name__}")

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{field[.key]: value}`` view of every counter."""
        snap: Dict[str, float] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, dict):
                for key, item in value.items():
                    snap[f"{f.name}.{key}"] = item
            elif isinstance(value, (int, float)):
                snap[f.name] = value
            else:
                raise TypeError(
                    f"{type(self).__name__}.{f.name}: unsupported stats "
                    f"field type {type(value).__name__}")
        return snap

    def register_into(self, registry, prefix: str) -> None:
        """Register every counter field into a
        :class:`~repro.obs.registry.MetricRegistry` under ``prefix``."""
        registry.register_struct(prefix, self)


def _request_table() -> Dict[str, int]:
    return {t: 0 for t in REQUEST_TYPES}


@dataclass(slots=True)
class CacheStats(StatsStruct):
    """Raw event counts for one cache level."""

    accesses: Dict[str, int] = field(default_factory=_request_table)
    hits: Dict[str, int] = field(default_factory=_request_table)
    misses: Dict[str, int] = field(default_factory=_request_table)

    #: Demand misses that merged into an in-flight *prefetch* MSHR entry
    #: (the classic "late prefetch").
    demand_merged_into_prefetch: int = 0
    #: Demand misses that merged into any in-flight MSHR entry.
    mshr_merges: int = 0
    #: Total cycles requests spent waiting because every MSHR was busy.
    mshr_full_wait_cycles: int = 0
    #: Number of requests that had to wait for a free MSHR.
    mshr_full_events: int = 0
    #: Sum of MSHR occupancy sampled at each allocation (for mean occupancy).
    mshr_occupancy_sum: int = 0
    mshr_occupancy_samples: int = 0

    #: Demand-load miss latency (allocation to fill), cycles.
    load_miss_latency_sum: int = 0
    load_miss_latency_count: int = 0

    evictions: int = 0
    writebacks_out: int = 0

    #: Prefetch bookkeeping at this level.
    prefetches_issued: int = 0
    prefetches_dropped: int = 0      # PQ full or duplicate-in-cache
    prefetch_fills: int = 0
    prefetches_useful: int = 0       # filled block later hit by a demand
    prefetches_useless: int = 0      # filled block evicted without demand hit

    def total_accesses(self) -> int:
        return sum(self.accesses.values())

    def demand_accesses(self) -> int:
        return self.accesses[REQ_LOAD] + self.accesses[REQ_STORE]

    def demand_misses(self) -> int:
        return self.misses[REQ_LOAD] + self.misses[REQ_STORE]

    def load_miss_latency_avg(self) -> float:
        if not self.load_miss_latency_count:
            return 0.0
        return self.load_miss_latency_sum / self.load_miss_latency_count

    def mshr_occupancy_avg(self) -> float:
        if not self.mshr_occupancy_samples:
            return 0.0
        return self.mshr_occupancy_sum / self.mshr_occupancy_samples

    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches that were useful.

        Only prefetches with a resolved outcome (useful or useless) are
        counted, so in-flight prefetches at the end of simulation do not
        bias the metric.
        """
        resolved = self.prefetches_useful + self.prefetches_useless
        if not resolved:
            return 0.0
        return self.prefetches_useful / resolved


@dataclass(slots=True)
class CoreStats(StatsStruct):
    """Per-core execution statistics."""

    committed_instructions: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    cycles: int = 0
    wrong_path_loads: int = 0
    branch_mispredicts: int = 0

    def ipc(self) -> float:
        if not self.cycles:
            return 0.0
        return self.committed_instructions / self.cycles


@dataclass(slots=True)
class GhostMinionStats(StatsStruct):
    """GhostMinion-specific event counts."""

    gm_fills: int = 0
    gm_hits: int = 0
    gm_misses: int = 0
    commit_writes: int = 0       # GM hit at commit -> on-commit write to L1D
    commit_refetches: int = 0    # GM miss at commit -> re-fetch into hierarchy
    #: Re-fetches for loads that *had* a GM entry (hit level > L1D) but
    #: lost it to eviction before commit -- the GM-capacity-sensitive part.
    gm_lost_before_commit: int = 0
    commit_drops_suf: int = 0    # commit updates filtered out by SUF
    wb_stopped_suf: int = 0      # writeback propagation stopped by a SUF bit
    suf_correct: int = 0         # SUF filtered and the line was still cached
    suf_mispredict: int = 0      # SUF filtered but the line had been evicted

    def suf_accuracy(self) -> float:
        decided = self.suf_correct + self.suf_mispredict
        if not decided:
            return 1.0
        return self.suf_correct / decided


@dataclass(slots=True)
class DRAMStats(StatsStruct):
    """DRAM channel statistics."""

    requests: int = 0
    row_hits: int = 0
    row_misses: int = 0

    def row_hit_rate(self) -> float:
        if not self.requests:
            return 0.0
        return self.row_hits / self.requests
