"""TLB hierarchy: L1 dTLB backed by a shared STLB (Table II).

Table II's translation parameters:

* L1 dTLB: 64 entries, 4-way, 1 cycle;
* STLB: 1536 entries, 12-way, 8 cycles;
* misses in both walk the page table (modelled as a fixed-latency walk --
  the radix-walk accesses mostly hit the caches' page-table working set).

Translation happens before the data-cache access, so TLB misses lengthen a
load's effective issue latency.  Like real hardware (and unlike the data
caches under GhostMinion), TLB fills are *not* hidden from speculation:
wrong-path loads may install translations.  GhostMinion's paper scopes TLB
side channels out of its threat model (they are mitigated by orthogonal
techniques); we keep the same scope and model the TLB purely for timing
fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .stats import StatsStruct

#: 4 KB pages.
PAGE_SHIFT = 12


@dataclass(frozen=True)
class TLBLevelParams:
    """One TLB level."""

    name: str
    entries: int
    ways: int
    latency: int

    @property
    def sets(self) -> int:
        return self.entries // self.ways


@dataclass(frozen=True)
class TLBParams:
    """The Table II translation hierarchy."""

    dtlb: TLBLevelParams = field(default_factory=lambda: TLBLevelParams(
        name="dTLB", entries=64, ways=4, latency=1))
    stlb: TLBLevelParams = field(default_factory=lambda: TLBLevelParams(
        name="STLB", entries=1536, ways=12, latency=8))
    #: Page-table walk latency on an STLB miss (cycles).  Walks mostly hit
    #: the cache hierarchy's page-table entries, so this sits between an
    #: L2 and an LLC round trip.
    walk_latency: int = 60
    #: dTLB hits are folded into the load pipeline (no extra cycles).
    enabled: bool = True


@dataclass(slots=True)
class TLBStats(StatsStruct):
    """Translation statistics."""

    dtlb_accesses: int = 0
    dtlb_misses: int = 0
    stlb_misses: int = 0

    def dtlb_miss_rate(self) -> float:
        if not self.dtlb_accesses:
            return 0.0
        return self.dtlb_misses / self.dtlb_accesses


class _TLBLevel:
    """A set-associative translation cache (LRU).

    Recency is the dict's *insertion order*: a hit moves the page to the
    back (pop + reinsert, both O(1)) and eviction takes the front
    (``next(iter(...))``).  This is exactly equivalent to the earlier
    per-entry tick counters -- touches here are strictly ordered and
    ticks were unique, so ascending tick order and insertion order were
    always the same permutation -- but replaces the O(ways) min-scan per
    fill with O(1) operations.  (The data caches can NOT use this trick:
    their ``last_touch`` times are not monotone; see cache.py.)
    """

    __slots__ = ("params", "_sets", "_set_mask", "_ways")

    def __init__(self, params: TLBLevelParams) -> None:
        self.params = params
        self._sets: List[Dict[int, None]] = [
            dict() for _ in range(params.sets)]
        self._set_mask = params.sets - 1
        self._ways = params.ways

    def lookup(self, page: int) -> bool:
        """Touch-and-test; returns hit."""
        set_ = self._sets[page & self._set_mask]
        if page in set_:
            del set_[page]          # move to back: most recently used
            set_[page] = None
            return True
        return False

    def fill(self, page: int) -> None:
        set_ = self._sets[page & self._set_mask]
        if page in set_:
            return
        if len(set_) >= self._ways:
            del set_[next(iter(set_))]   # front of dict: LRU victim
        set_[page] = None

    def flush(self) -> None:
        for set_ in self._sets:
            set_.clear()


class TLBHierarchy:
    """dTLB -> STLB -> page walk."""

    def __init__(self, params: Optional[TLBParams] = None) -> None:
        self.params = params if params is not None else TLBParams()
        self.stats = TLBStats()
        self._dtlb = _TLBLevel(self.params.dtlb)
        self._stlb = _TLBLevel(self.params.stlb)
        # Hot-path hoists: translate runs once per load, and the dTLB-hit
        # fast path below reads these instead of chasing params chains.
        self._enabled = self.params.enabled
        self._dtlb_sets = self._dtlb._sets
        self._dtlb_mask = self._dtlb._set_mask
        self._stlb_latency = self.params.stlb.latency
        self._walk_latency = self.params.walk_latency

    def translate(self, vaddr: int) -> int:
        """Translate one access; returns the added latency in cycles.

        A dTLB hit costs nothing extra (it overlaps the AGU); a dTLB miss
        pays the STLB latency; an STLB miss additionally pays the walk.
        """
        if not self._enabled:
            return 0
        page = vaddr >> PAGE_SHIFT
        self.stats.dtlb_accesses += 1
        # dTLB hit fast path, inlined (the overwhelmingly common case):
        # move-to-back keeps dict insertion order == LRU recency order.
        set_ = self._dtlb_sets[page & self._dtlb_mask]
        if page in set_:
            del set_[page]
            set_[page] = None
            return 0
        return self._miss(page)

    def _miss(self, page: int) -> int:
        """dTLB-miss slow path: STLB lookup, then the page-table walk."""
        self.stats.dtlb_misses += 1
        if self._stlb.lookup(page):
            self._dtlb.fill(page)
            return self._stlb_latency
        self.stats.stlb_misses += 1
        self._stlb.fill(page)
        self._dtlb.fill(page)
        return self._stlb_latency + self._walk_latency

    def translate_block(self, block: int) -> int:
        """Translate a cache-block number (64-byte blocks, 4 KB pages).

        Same fast path as :meth:`translate`, minus the round trip through
        a byte address: ``(block << 6) >> PAGE_SHIFT == block >> 6``.
        """
        if not self._enabled:
            return 0
        page = block >> 6
        self.stats.dtlb_accesses += 1
        set_ = self._dtlb_sets[page & self._dtlb_mask]
        if page in set_:
            del set_[page]
            set_[page] = None
            return 0
        return self._miss(page)

    def flush(self) -> None:
        """Full TLB shootdown (context/domain switch)."""
        self._dtlb.flush()
        self._stlb.flush()

    def reset_stats(self) -> None:
        self.stats.reset()
