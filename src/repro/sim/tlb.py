"""TLB hierarchy: L1 dTLB backed by a shared STLB (Table II).

Table II's translation parameters:

* L1 dTLB: 64 entries, 4-way, 1 cycle;
* STLB: 1536 entries, 12-way, 8 cycles;
* misses in both walk the page table (modelled as a fixed-latency walk --
  the radix-walk accesses mostly hit the caches' page-table working set).

Translation happens before the data-cache access, so TLB misses lengthen a
load's effective issue latency.  Like real hardware (and unlike the data
caches under GhostMinion), TLB fills are *not* hidden from speculation:
wrong-path loads may install translations.  GhostMinion's paper scopes TLB
side channels out of its threat model (they are mitigated by orthogonal
techniques); we keep the same scope and model the TLB purely for timing
fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .stats import StatsStruct

#: 4 KB pages.
PAGE_SHIFT = 12


@dataclass(frozen=True)
class TLBLevelParams:
    """One TLB level."""

    name: str
    entries: int
    ways: int
    latency: int

    @property
    def sets(self) -> int:
        return self.entries // self.ways


@dataclass(frozen=True)
class TLBParams:
    """The Table II translation hierarchy."""

    dtlb: TLBLevelParams = field(default_factory=lambda: TLBLevelParams(
        name="dTLB", entries=64, ways=4, latency=1))
    stlb: TLBLevelParams = field(default_factory=lambda: TLBLevelParams(
        name="STLB", entries=1536, ways=12, latency=8))
    #: Page-table walk latency on an STLB miss (cycles).  Walks mostly hit
    #: the cache hierarchy's page-table entries, so this sits between an
    #: L2 and an LLC round trip.
    walk_latency: int = 60
    #: dTLB hits are folded into the load pipeline (no extra cycles).
    enabled: bool = True


@dataclass
class TLBStats(StatsStruct):
    """Translation statistics."""

    dtlb_accesses: int = 0
    dtlb_misses: int = 0
    stlb_misses: int = 0

    def dtlb_miss_rate(self) -> float:
        if not self.dtlb_accesses:
            return 0.0
        return self.dtlb_misses / self.dtlb_accesses


class _TLBLevel:
    """A set-associative translation cache (LRU)."""

    __slots__ = ("params", "_sets", "_set_mask", "_tick")

    def __init__(self, params: TLBLevelParams) -> None:
        self.params = params
        self._sets: List[Dict[int, int]] = [
            dict() for _ in range(params.sets)]
        self._set_mask = params.sets - 1
        self._tick = 0

    def lookup(self, page: int) -> bool:
        """Touch-and-test; returns hit."""
        self._tick += 1
        set_ = self._sets[page & self._set_mask]
        if page in set_:
            set_[page] = self._tick
            return True
        return False

    def fill(self, page: int) -> None:
        set_ = self._sets[page & self._set_mask]
        if page in set_:
            return
        if len(set_) >= self.params.ways:
            victim = min(set_, key=set_.get)
            del set_[victim]
        self._tick += 1
        set_[page] = self._tick

    def flush(self) -> None:
        for set_ in self._sets:
            set_.clear()


class TLBHierarchy:
    """dTLB -> STLB -> page walk."""

    def __init__(self, params: Optional[TLBParams] = None) -> None:
        self.params = params if params is not None else TLBParams()
        self.stats = TLBStats()
        self._dtlb = _TLBLevel(self.params.dtlb)
        self._stlb = _TLBLevel(self.params.stlb)

    def translate(self, vaddr: int) -> int:
        """Translate one access; returns the added latency in cycles.

        A dTLB hit costs nothing extra (it overlaps the AGU); a dTLB miss
        pays the STLB latency; an STLB miss additionally pays the walk.
        """
        if not self.params.enabled:
            return 0
        page = vaddr >> PAGE_SHIFT
        self.stats.dtlb_accesses += 1
        if self._dtlb.lookup(page):
            return 0
        self.stats.dtlb_misses += 1
        if self._stlb.lookup(page):
            self._dtlb.fill(page)
            return self.params.stlb.latency
        self.stats.stlb_misses += 1
        self._stlb.fill(page)
        self._dtlb.fill(page)
        return self.params.stlb.latency + self.params.walk_latency

    def translate_block(self, block: int) -> int:
        """Translate a cache-block number (64-byte blocks, 4 KB pages)."""
        return self.translate(block << 6)

    def flush(self) -> None:
        """Full TLB shootdown (context/domain switch)."""
        self._dtlb.flush()
        self._stlb.flush()

    def reset_stats(self) -> None:
        self.stats.reset()
