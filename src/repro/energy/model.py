"""Dynamic-energy model of the memory hierarchy (Fig. 14).

The paper computes dynamic energy with CACTI-P and the Micron DRAM power
calculator at 7 nm.  Neither tool is available offline, so we use a static
per-access energy table with CACTI-like ratios at a 7 nm-ish technology
point.  Fig. 14 is a *relative* plot (normalized to the non-secure,
no-prefetch system), and relative dynamic energy is traffic-dominated, so
fixed per-access costs preserve the orderings the paper reports:

* the secure system's extra GM/commit traffic raises energy for every
  prefetcher;
* SUF removes most of that increase;
* prefetchers that issue more requests (TSB) pay more dynamic energy than
  conservative ones (IP-stride) while gaining performance.

All values are in nanojoules per access of one 64-byte line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..sim.system import SimResult


@dataclass(frozen=True)
class EnergyParams:
    """Per-access dynamic energy (nJ), CACTI-P-like ratios at ~7 nm."""

    gm_nj: float = 0.004        # 2 KB CAM-ish structure
    l1d_nj: float = 0.012       # 48 KB, 12-way
    l2_nj: float = 0.035        # 512 KB, 8-way
    llc_nj: float = 0.12        # 2 MB, 16-way
    dram_nj: float = 12.0       # 64-byte line transfer incl. I/O
    #: Per-access cost of the prefetcher's own tables (lumped).
    prefetcher_nj: float = 0.002


@dataclass
class EnergyBreakdown:
    """Dynamic energy per structure for one run, in nanojoules."""

    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total_nj(self) -> float:
        return sum(self.components.values())

    def normalized_to(self, baseline: "EnergyBreakdown") -> float:
        if baseline.total_nj == 0:
            return 0.0
        return self.total_nj / baseline.total_nj


def dynamic_energy(result: SimResult,
                   params: EnergyParams = EnergyParams()) -> EnergyBreakdown:
    """Compute the memory hierarchy's dynamic energy for one run."""
    components: Dict[str, float] = {}
    components["l1d"] = result.l1d.total_accesses() * params.l1d_nj
    components["l2"] = result.l2.total_accesses() * params.l2_nj
    components["llc"] = result.llc.total_accesses() * params.llc_nj
    components["dram"] = result.dram.requests * params.dram_nj
    if result.gm is not None:
        gm_accesses = (result.gm.gm_hits + result.gm.gm_misses
                       + result.gm.gm_fills)
        components["gm"] = gm_accesses * params.gm_nj
    prefetch_work = (result.l1d.prefetches_issued
                     + result.l2.prefetches_issued
                     + result.llc.prefetches_issued)
    if prefetch_work:
        components["prefetcher"] = prefetch_work * params.prefetcher_nj
    return EnergyBreakdown(components)


def energy_per_kilo_instruction(result: SimResult,
                                params: EnergyParams = EnergyParams()
                                ) -> float:
    """Dynamic nJ per kilo-instruction (comparable across runs)."""
    ki = result.kilo_instructions()
    if ki <= 0:
        return 0.0
    return dynamic_energy(result, params).total_nj / ki
