"""Dynamic-energy modelling of the memory hierarchy."""

from .model import (EnergyBreakdown, EnergyParams, dynamic_energy,
                    energy_per_kilo_instruction)

__all__ = ["EnergyBreakdown", "EnergyParams", "dynamic_energy",
           "energy_per_kilo_instruction"]
